#include "shard/worker.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <exception>

#include "service/request_kernels.hpp"
#include "shard/transport.hpp"

namespace aimsc::shard {

ShardWorker::ShardWorker(bool exitOnCrashRequest)
    : exitOnCrashRequest_(exitOnCrashRequest) {}

std::vector<std::uint8_t> garbageReplyFrame() {
  // Deterministic junk: wrong magic, plausible length.  decodeReply throws
  // DecodeError on byte 0; the supervisor's retry path takes it from there.
  std::vector<std::uint8_t> junk(48);
  for (std::size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<std::uint8_t>(0x5A ^ (i * 7));
  }
  return junk;
}

std::vector<std::uint8_t> ShardWorker::serve(
    std::span<const std::uint8_t> frame) {
  WireReply reply;
  try {
    const WireRequest wq = decodeRequest(frame);
    switch (wq.kind) {
      case MessageKind::Crash:
        if (exitOnCrashRequest_) ::_exit(42);
        reply.ok = false;
        reply.error = "shard worker: crash requested (loopback refuses)";
        break;
      case MessageKind::Ping:
        reply.kind = ReplyKind::Pong;
        reply.served = served_;
        break;
      case MessageKind::Misbehave:
        armedFault_ = wq.fault;
        return {};  // arming frames get no reply (Execute pairing stays 1:1)
      case MessageKind::Execute: {
        ++served_;
        const WorkerFault fault = armedFault_;
        armedFault_ = WorkerFault::None;  // one-shot: retries are fault-free
        if (fault == WorkerFault::GarbageReply) return garbageReplyFrame();
        if (fault == WorkerFault::CrashBeforeReply ||
            fault == WorkerFault::HangBeforeReply ||
            fault == WorkerFault::DropConnection) {
          if (!exitOnCrashRequest_) {
            reply.ok = false;
            reply.error = "shard worker: process fault armed (loopback "
                          "cannot crash/hang/drop)";
            break;
          }
          // Do the work first — the modeled failure is a worker dying
          // BETWEEN computing and replying, the worst replay case.
          (void)execute(wq);
          postAction_ = fault;
          return {};
        }
        reply = execute(wq);
        break;
      }
    }
  } catch (const std::exception& e) {
    reply = WireReply{};
    reply.ok = false;
    reply.error = e.what();
  }
  return encodeReply(reply);
}

WireReply ShardWorker::execute(const WireRequest& wq) {
  const service::Request q = wq.toRequest();
  const service::OutputShape shape = service::outputShapeFor(q);

  const service::ExecShape es{wq.lanes, wq.rowsPerTile};
  auto exec = service::makeRequestExecutor(es, q, wq.assignment.laneSeedBase,
                                           faultCache_);
  // Re-adopt the warm arena pool: capacity survives the executor rebuild,
  // bits do not change (reset rewinds cursors only).
  exec->adoptArenas(std::move(arenaPool_));
  arenaPool_.clear();

  const std::uint32_t stride = wq.assignment.laneStride;
  const std::uint32_t begin = wq.assignment.laneBegin;
  const auto owned = [stride, begin](std::size_t lane) {
    return lane % stride == begin;
  };

  img::Image staging = service::makeStage0Staging(q, shape);
  auto stage0 = exec->laneTasks(staging.height(),
                                service::stage0Kernel(q, staging));

  img::Image morphOut;
  const img::Image* output = &staging;
  if (q.app == apps::AppKind::Morphology) {
    // Dilate reads the FULL eroded intermediate, so stage 0 runs for every
    // lane (deterministic — identical in every worker); stage 1 runs for
    // owned lanes only, and ledgers are reported for owned lanes only, so
    // the merged bill equals the solo fleet sum exactly.
    for (auto& task : stage0) task();
    morphOut = img::Image(shape.width, shape.height);
    morphOut.pixels() = staging.pixels();
    auto stage1 = exec->laneTasks(morphOut.height(),
                                  service::stage1Kernel(staging, morphOut));
    for (std::size_t lane = 0; lane < stage1.size(); ++lane) {
      if (owned(lane)) stage1[lane]();
    }
    output = &morphOut;
  } else {
    for (std::size_t lane = 0; lane < stage0.size(); ++lane) {
      if (owned(lane)) stage0[lane]();
    }
  }

  WireReply reply;
  reply.width = static_cast<std::uint32_t>(shape.width);
  reply.height = static_cast<std::uint32_t>(shape.height);

  // One segment per owned tile (tile t is pinned to lane t % lanes, the
  // executor's schedule) clipped to the assignment's row window.
  const std::size_t height = output->height();
  const std::size_t rpt = wq.rowsPerTile;
  const std::size_t numTiles = (height + rpt - 1) / rpt;
  const std::size_t winBegin = wq.assignment.rowBegin;
  const std::size_t winEnd =
      wq.assignment.rowEnd == 0 ? height
                                : std::min<std::size_t>(wq.assignment.rowEnd,
                                                        height);
  for (std::size_t t = 0; t < numTiles; ++t) {
    if (!owned(t % wq.lanes)) continue;
    const std::size_t r0 = std::max(t * rpt, winBegin);
    const std::size_t r1 = std::min(t * rpt + rpt, winEnd);
    if (r0 >= r1) continue;
    RowSegment s;
    s.rowBegin = static_cast<std::uint32_t>(r0);
    s.rowEnd = static_cast<std::uint32_t>(r1);
    const std::uint8_t* base = output->pixels().data() + r0 * shape.width;
    s.pixels.assign(base, base + (r1 - r0) * shape.width);
    reply.segments.push_back(std::move(s));
  }

  // Ledger for every owned lane — including tile-less idle lanes, whose
  // construction may still have cost events (the solo path bills them too).
  for (std::size_t lane = 0; lane < exec->lanes(); ++lane) {
    if (!owned(lane)) continue;
    LaneStats ls;
    ls.lane = static_cast<std::uint32_t>(lane);
    ls.opCount = exec->backend(lane).opCount();
    ls.events = exec->backend(lane).events();
    reply.laneStats.push_back(std::move(ls));
  }

  arenaPool_ = exec->releaseArenas();
  return reply;
}

int shardWorkerMain(int fd) {
  ShardWorker worker(/*exitOnCrashRequest=*/true);
  std::vector<std::uint8_t> frame;
  for (;;) {
    if (!readFrame(fd, frame)) return 0;  // coordinator closed: clean exit
    const std::vector<std::uint8_t> reply = worker.serve(frame);
    switch (worker.takePostServeAction()) {
      case WorkerFault::CrashBeforeReply:
        ::_exit(43);
      case WorkerFault::HangBeforeReply:
        for (;;) ::pause();  // wedged until the supervisor SIGKILLs us
      case WorkerFault::DropConnection:
        ::close(fd);
        ::_exit(44);
      default:
        break;
    }
    if (reply.empty()) continue;  // Misbehave arming frames get no reply
    if (!writeFrame(fd, reply)) return 2;  // coordinator vanished mid-reply
  }
}

int shardWorkerTcpMain(std::uint16_t port) {
  const int listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd < 0) return 3;
  const int one = 1;
  ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listenFd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listenFd, 4) != 0) {
    ::close(listenFd);
    return 3;
  }
  for (;;) {
    const int conn = ::accept(listenFd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      ::close(listenFd);
      return 3;
    }
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    shardWorkerMain(conn);  // one connection at a time, fresh warm state
    ::close(conn);
  }
}

}  // namespace aimsc::shard
