#include "shard/worker.hpp"

#include <unistd.h>

#include <algorithm>
#include <exception>

#include "service/request_kernels.hpp"
#include "shard/transport.hpp"

namespace aimsc::shard {

ShardWorker::ShardWorker(bool exitOnCrashRequest)
    : exitOnCrashRequest_(exitOnCrashRequest) {}

std::vector<std::uint8_t> ShardWorker::serve(
    std::span<const std::uint8_t> frame) {
  WireReply reply;
  try {
    const WireRequest wq = decodeRequest(frame);
    if (wq.kind == MessageKind::Crash) {
      if (exitOnCrashRequest_) ::_exit(42);
      reply.ok = false;
      reply.error = "shard worker: crash requested (loopback refuses)";
    } else {
      reply = execute(wq);
    }
  } catch (const std::exception& e) {
    reply = WireReply{};
    reply.ok = false;
    reply.error = e.what();
  }
  return encodeReply(reply);
}

WireReply ShardWorker::execute(const WireRequest& wq) {
  const service::Request q = wq.toRequest();
  const service::OutputShape shape = service::outputShapeFor(q);

  const service::ExecShape es{wq.lanes, wq.rowsPerTile};
  auto exec = service::makeRequestExecutor(es, q, wq.assignment.laneSeedBase,
                                           faultCache_);
  // Re-adopt the warm arena pool: capacity survives the executor rebuild,
  // bits do not change (reset rewinds cursors only).
  exec->adoptArenas(std::move(arenaPool_));
  arenaPool_.clear();

  const std::uint32_t stride = wq.assignment.laneStride;
  const std::uint32_t begin = wq.assignment.laneBegin;
  const auto owned = [stride, begin](std::size_t lane) {
    return lane % stride == begin;
  };

  img::Image staging = service::makeStage0Staging(q, shape);
  auto stage0 = exec->laneTasks(staging.height(),
                                service::stage0Kernel(q, staging));

  img::Image morphOut;
  const img::Image* output = &staging;
  if (q.app == apps::AppKind::Morphology) {
    // Dilate reads the FULL eroded intermediate, so stage 0 runs for every
    // lane (deterministic — identical in every worker); stage 1 runs for
    // owned lanes only, and ledgers are reported for owned lanes only, so
    // the merged bill equals the solo fleet sum exactly.
    for (auto& task : stage0) task();
    morphOut = img::Image(shape.width, shape.height);
    morphOut.pixels() = staging.pixels();
    auto stage1 = exec->laneTasks(morphOut.height(),
                                  service::stage1Kernel(staging, morphOut));
    for (std::size_t lane = 0; lane < stage1.size(); ++lane) {
      if (owned(lane)) stage1[lane]();
    }
    output = &morphOut;
  } else {
    for (std::size_t lane = 0; lane < stage0.size(); ++lane) {
      if (owned(lane)) stage0[lane]();
    }
  }

  WireReply reply;
  reply.width = static_cast<std::uint32_t>(shape.width);
  reply.height = static_cast<std::uint32_t>(shape.height);

  // One segment per owned tile (tile t is pinned to lane t % lanes, the
  // executor's schedule) clipped to the assignment's row window.
  const std::size_t height = output->height();
  const std::size_t rpt = wq.rowsPerTile;
  const std::size_t numTiles = (height + rpt - 1) / rpt;
  const std::size_t winBegin = wq.assignment.rowBegin;
  const std::size_t winEnd =
      wq.assignment.rowEnd == 0 ? height
                                : std::min<std::size_t>(wq.assignment.rowEnd,
                                                        height);
  for (std::size_t t = 0; t < numTiles; ++t) {
    if (!owned(t % wq.lanes)) continue;
    const std::size_t r0 = std::max(t * rpt, winBegin);
    const std::size_t r1 = std::min(t * rpt + rpt, winEnd);
    if (r0 >= r1) continue;
    RowSegment s;
    s.rowBegin = static_cast<std::uint32_t>(r0);
    s.rowEnd = static_cast<std::uint32_t>(r1);
    const std::uint8_t* base = output->pixels().data() + r0 * shape.width;
    s.pixels.assign(base, base + (r1 - r0) * shape.width);
    reply.segments.push_back(std::move(s));
  }

  // Ledger for every owned lane — including tile-less idle lanes, whose
  // construction may still have cost events (the solo path bills them too).
  for (std::size_t lane = 0; lane < exec->lanes(); ++lane) {
    if (!owned(lane)) continue;
    LaneStats ls;
    ls.lane = static_cast<std::uint32_t>(lane);
    ls.opCount = exec->backend(lane).opCount();
    ls.events = exec->backend(lane).events();
    reply.laneStats.push_back(std::move(ls));
  }

  arenaPool_ = exec->releaseArenas();
  return reply;
}

int shardWorkerMain(int fd) {
  ShardWorker worker(/*exitOnCrashRequest=*/true);
  std::vector<std::uint8_t> frame;
  for (;;) {
    if (!readFrame(fd, frame)) return 0;  // coordinator closed: clean exit
    const std::vector<std::uint8_t> reply = worker.serve(frame);
    if (!writeFrame(fd, reply)) return 2;  // coordinator vanished mid-reply
  }
}

}  // namespace aimsc::shard
