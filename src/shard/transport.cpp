#include "shard/transport.hpp"

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <mutex>
#include <stdexcept>
#include <string>

#include "shard/worker.hpp"

namespace aimsc::shard {

namespace {

/// Parent-side fds of every live SubprocessChannel.  A newly fork()ed
/// worker inherits copies of these and MUST close them: otherwise it holds
/// a sibling's socket write-end open, that sibling never sees EOF when its
/// channel closes, and shutdown deadlocks in waitpid.  The child iterates
/// its fork-time copy without locking (it is single-threaded); parent-side
/// mutations are mutex-guarded.
std::mutex parentFdsMutex;
std::vector<int>& liveParentFds() {
  static std::vector<int> fds;
  return fds;
}

bool readFully(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;  // EOF or hard error
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool writeFully(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE here instead of killing the
    // process with SIGPIPE — the caller turns it into an error ticket.
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool readFrame(int fd, std::vector<std::uint8_t>& frame) {
  std::uint8_t len[4];
  if (!readFully(fd, len, sizeof(len))) return false;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= static_cast<std::uint32_t>(len[i]) << (8 * i);
  if (n > kMaxFrameBytes) return false;
  frame.resize(n);
  return n == 0 || readFully(fd, frame.data(), n);
}

bool writeFrame(int fd, std::span<const std::uint8_t> frame) {
  if (frame.size() > kMaxFrameBytes) return false;
  const std::uint32_t n = static_cast<std::uint32_t>(frame.size());
  std::uint8_t len[4];
  for (int i = 0; i < 4; ++i) len[i] = (n >> (8 * i)) & 0xff;
  return writeFully(fd, len, sizeof(len)) &&
         (frame.empty() || writeFully(fd, frame.data(), frame.size()));
}

struct LoopbackChannel::Impl {
  ShardWorker worker{/*exitOnCrashRequest=*/false};
};

LoopbackChannel::LoopbackChannel() : impl_(std::make_unique<Impl>()) {}
LoopbackChannel::~LoopbackChannel() = default;

void LoopbackChannel::send(std::span<const std::uint8_t> frame) {
  replies_.push_back(impl_->worker.serve(frame));
}

std::vector<std::uint8_t> LoopbackChannel::receive() {
  if (replies_.empty()) {
    throw std::runtime_error("LoopbackChannel: receive() with no pending reply");
  }
  std::vector<std::uint8_t> reply = std::move(replies_.front());
  replies_.pop_front();
  return reply;
}

SubprocessChannel::SubprocessChannel() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error("SubprocessChannel: socketpair failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error("SubprocessChannel: fork failed");
  }
  if (pid == 0) {
    // Worker child: serve frames until the parent closes its end.  _exit,
    // never return — unwinding into a fork()ed copy of the parent's state
    // (atexit handlers, buffered streams) must not happen.
    for (const int inherited : liveParentFds()) ::close(inherited);
    ::close(fds[0]);
    ::_exit(shardWorkerMain(fds[1]));
  }
  ::close(fds[1]);
  fd_ = fds[0];
  pid_ = pid;
  std::lock_guard<std::mutex> lock(parentFdsMutex);
  liveParentFds().push_back(fd_);
}

SubprocessChannel::~SubprocessChannel() {
  if (fd_ >= 0) {
    {
      std::lock_guard<std::mutex> lock(parentFdsMutex);
      auto& fds = liveParentFds();
      fds.erase(std::remove(fds.begin(), fds.end(), fd_), fds.end());
    }
    ::close(fd_);  // worker sees EOF and exits cleanly
  }
  if (pid_ > 0) {
    int status = 0;
    ::waitpid(pid_, &status, 0);
  }
}

void SubprocessChannel::poison(const char* what) {
  poisoned_ = true;
  throw std::runtime_error(std::string("SubprocessChannel: ") + what);
}

void SubprocessChannel::send(std::span<const std::uint8_t> frame) {
  if (poisoned_) poison("worker previously failed");
  if (!writeFrame(fd_, frame)) poison("worker unreachable (send failed)");
}

std::vector<std::uint8_t> SubprocessChannel::receive() {
  if (poisoned_) poison("worker previously failed");
  std::vector<std::uint8_t> frame;
  if (!readFrame(fd_, frame)) poison("worker died before replying");
  return frame;
}

std::vector<std::unique_ptr<ShardChannel>> makeShardChannels(
    ShardTransportKind kind, std::size_t count) {
  std::vector<std::unique_ptr<ShardChannel>> channels;
  channels.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (kind == ShardTransportKind::Subprocess) {
      channels.push_back(std::make_unique<SubprocessChannel>());
    } else {
      channels.push_back(std::make_unique<LoopbackChannel>());
    }
  }
  return channels;
}

}  // namespace aimsc::shard
