#include "shard/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <mutex>
#include <stdexcept>

#include "shard/worker.hpp"

namespace aimsc::shard {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Parent-side fds of every live process-backed channel.  A newly fork()ed
/// worker inherits copies of these and MUST close them: otherwise it holds
/// a sibling's socket write-end open, that sibling never sees EOF when its
/// channel closes, and shutdown deadlocks in waitpid.  The child iterates
/// its fork-time copy without locking (it is single-threaded); parent-side
/// mutations are mutex-guarded.
std::mutex parentFdsMutex;
std::vector<int>& liveParentFds() {
  static std::vector<int> fds;
  return fds;
}

void registerParentFd(int fd) {
  std::lock_guard<std::mutex> lock(parentFdsMutex);
  liveParentFds().push_back(fd);
}

void unregisterParentFd(int fd) {
  std::lock_guard<std::mutex> lock(parentFdsMutex);
  auto& fds = liveParentFds();
  fds.erase(std::remove(fds.begin(), fds.end(), fd), fds.end());
}

void closeInheritedParentFds() {
  for (const int inherited : liveParentFds()) ::close(inherited);
}

/// Remaining milliseconds until \p deadline for poll(), clamped to >= 1 so
/// a deadline a few microseconds away still polls instead of spinning.
int pollBudgetMs(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SteadyClock::now());
  return std::max<long long>(1, left.count()) > 0x7fffffff
             ? 0x7fffffff
             : static_cast<int>(std::max<long long>(1, left.count()));
}

bool readFully(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;  // EOF or hard error
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool writeFully(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE here instead of killing the
    // process with SIGPIPE — the caller turns it into an error ticket.
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

/// Deadline-bounded reads: poll for readability against the shared frame
/// deadline before every recv, so a wedged peer costs at most the budget.
IoResult readFullyWithin(int fd, std::uint8_t* buf, std::size_t n,
                         SteadyClock::time_point deadline) {
  std::size_t got = 0;
  while (got < n) {
    if (SteadyClock::now() >= deadline) return IoResult::Timeout;
    struct pollfd p = {fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, pollBudgetMs(deadline));
    if (pr == 0) return IoResult::Timeout;
    if (pr < 0) {
      if (errno == EINTR) continue;
      return IoResult::Closed;
    }
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) {
      if (r < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return IoResult::Closed;
    }
    got += static_cast<std::size_t>(r);
  }
  return IoResult::Ok;
}

IoResult writeFullyWithin(int fd, const std::uint8_t* buf, std::size_t n,
                          SteadyClock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < n) {
    if (SteadyClock::now() >= deadline) return IoResult::Timeout;
    struct pollfd p = {fd, POLLOUT, 0};
    const int pr = ::poll(&p, 1, pollBudgetMs(deadline));
    if (pr == 0) return IoResult::Timeout;
    if (pr < 0) {
      if (errno == EINTR) continue;
      return IoResult::Closed;
    }
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return IoResult::Closed;
    }
    sent += static_cast<std::size_t>(r);
  }
  return IoResult::Ok;
}

void encodeLen(std::uint32_t n, std::uint8_t len[4]) {
  for (int i = 0; i < 4; ++i) len[i] = (n >> (8 * i)) & 0xff;
}

std::uint32_t decodeLen(const std::uint8_t len[4]) {
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= static_cast<std::uint32_t>(len[i]) << (8 * i);
  return n;
}

/// Connects \p fd (blocking socket) within \p budget via the non-blocking
/// connect + poll(POLLOUT) + SO_ERROR dance.  Returns false on timeout or
/// connection failure; the socket is left in blocking mode on success.
bool connectWithin(int fd, const sockaddr* addr, socklen_t len,
                   std::chrono::milliseconds budget) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  int rc = ::connect(fd, addr, len);
  if (rc != 0 && errno != EINPROGRESS) return false;
  if (rc != 0) {
    const auto deadline = SteadyClock::now() + budget;
    for (;;) {
      if (SteadyClock::now() >= deadline) return false;
      struct pollfd p = {fd, POLLOUT, 0};
      const int pr = ::poll(&p, 1, pollBudgetMs(deadline));
      if (pr == 0) return false;
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      break;
    }
    int err = 0;
    socklen_t errLen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errLen) != 0 ||
        err != 0) {
      return false;
    }
  }
  return ::fcntl(fd, F_SETFL, flags) == 0;
}

}  // namespace

bool readFrame(int fd, std::vector<std::uint8_t>& frame) {
  std::uint8_t len[4];
  if (!readFully(fd, len, sizeof(len))) return false;
  const std::uint32_t n = decodeLen(len);
  if (n > kMaxFrameBytes) return false;
  frame.resize(n);
  return n == 0 || readFully(fd, frame.data(), n);
}

bool writeFrame(int fd, std::span<const std::uint8_t> frame) {
  if (frame.size() > kMaxFrameBytes) return false;
  std::uint8_t len[4];
  encodeLen(static_cast<std::uint32_t>(frame.size()), len);
  return writeFully(fd, len, sizeof(len)) &&
         (frame.empty() || writeFully(fd, frame.data(), frame.size()));
}

IoResult readFrameWithin(int fd, std::vector<std::uint8_t>& frame,
                         std::chrono::milliseconds deadline) {
  if (deadline.count() <= 0) {
    return readFrame(fd, frame) ? IoResult::Ok : IoResult::Closed;
  }
  const auto limit = SteadyClock::now() + deadline;
  std::uint8_t len[4];
  IoResult r = readFullyWithin(fd, len, sizeof(len), limit);
  if (r != IoResult::Ok) return r;
  const std::uint32_t n = decodeLen(len);
  if (n > kMaxFrameBytes) return IoResult::Closed;
  frame.resize(n);
  return n == 0 ? IoResult::Ok : readFullyWithin(fd, frame.data(), n, limit);
}

IoResult writeFrameWithin(int fd, std::span<const std::uint8_t> frame,
                          std::chrono::milliseconds deadline) {
  if (deadline.count() <= 0) {
    return writeFrame(fd, frame) ? IoResult::Ok : IoResult::Closed;
  }
  if (frame.size() > kMaxFrameBytes) return IoResult::Closed;
  const auto limit = SteadyClock::now() + deadline;
  std::uint8_t len[4];
  encodeLen(static_cast<std::uint32_t>(frame.size()), len);
  IoResult r = writeFullyWithin(fd, len, sizeof(len), limit);
  if (r != IoResult::Ok) return r;
  return frame.empty()
             ? IoResult::Ok
             : writeFullyWithin(fd, frame.data(), frame.size(), limit);
}

struct LoopbackChannel::Impl {
  ShardWorker worker{/*exitOnCrashRequest=*/false};
};

LoopbackChannel::LoopbackChannel() : impl_(std::make_unique<Impl>()) {}
LoopbackChannel::~LoopbackChannel() = default;

void LoopbackChannel::send(std::span<const std::uint8_t> frame) {
  std::vector<std::uint8_t> reply = impl_->worker.serve(frame);
  // Reply-less frames (Misbehave arming) queue nothing, mirroring the
  // subprocess worker's silent arm.
  if (!reply.empty()) replies_.push_back(std::move(reply));
}

std::vector<std::uint8_t> LoopbackChannel::receive() {
  if (replies_.empty()) {
    throw std::runtime_error("LoopbackChannel: receive() with no pending reply");
  }
  std::vector<std::uint8_t> reply = std::move(replies_.front());
  replies_.pop_front();
  return reply;
}

SubprocessChannel::SubprocessChannel(ChannelDeadlines deadlines)
    : deadlines_(deadlines) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error("SubprocessChannel: socketpair failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error("SubprocessChannel: fork failed");
  }
  if (pid == 0) {
    // Worker child: serve frames until the parent closes its end.  _exit,
    // never return — unwinding into a fork()ed copy of the parent's state
    // (atexit handlers, buffered streams) must not happen.
    closeInheritedParentFds();
    ::close(fds[0]);
    ::_exit(shardWorkerMain(fds[1]));
  }
  ::close(fds[1]);
  fd_ = fds[0];
  pid_ = pid;
  registerParentFd(fd_);
}

SubprocessChannel::~SubprocessChannel() {
  if (fd_ >= 0) {
    unregisterParentFd(fd_);
    ::close(fd_);  // worker sees EOF and exits cleanly
  }
  if (pid_ > 0) {
    int status = 0;
    ::waitpid(pid_, &status, 0);
  }
}

void SubprocessChannel::terminate() {
  poisoned_ = true;
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }
  if (fd_ >= 0) {
    unregisterParentFd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void SubprocessChannel::poison(const char* what) {
  poisoned_ = true;
  throw std::runtime_error(std::string("SubprocessChannel: ") + what);
}

void SubprocessChannel::send(std::span<const std::uint8_t> frame) {
  if (poisoned_) poison("worker previously failed");
  switch (writeFrameWithin(fd_, frame, deadlines_.send)) {
    case IoResult::Ok:
      return;
    case IoResult::Timeout:
      // A partial frame may be in flight: the stream is suspect but the
      // worker may only be slow.  Not poisoned; the supervisor decides.
      throw ChannelTimeout("SubprocessChannel: send deadline expired");
    case IoResult::Closed:
      break;
  }
  poison("worker unreachable (send failed)");
}

std::vector<std::uint8_t> SubprocessChannel::receive() {
  if (poisoned_) poison("worker previously failed");
  std::vector<std::uint8_t> frame;
  switch (readFrameWithin(fd_, frame, deadlines_.recv)) {
    case IoResult::Ok:
      return frame;
    case IoResult::Timeout:
      throw ChannelTimeout("SubprocessChannel: recv deadline expired");
    case IoResult::Closed:
      break;
  }
  poison("worker died before replying");
}

TcpChannel::TcpChannel(int connectedFd, int pid, ChannelDeadlines deadlines)
    : deadlines_(deadlines), fd_(connectedFd), pid_(pid) {
  registerParentFd(fd_);
}

TcpChannel::TcpChannel(const std::string& host, std::uint16_t port,
                       ChannelDeadlines deadlines)
    : deadlines_(deadlines) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("TcpChannel: bad IPv4 address " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("TcpChannel: socket failed");
  if (!connectWithin(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr), deadlines_.connect)) {
    ::close(fd);
    throw std::runtime_error("TcpChannel: connect to " + host + " timed out "
                             "or was refused");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  registerParentFd(fd_);
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) {
    unregisterParentFd(fd_);
    ::close(fd_);
  }
  if (pid_ > 0) {
    int status = 0;
    ::waitpid(pid_, &status, 0);
  }
}

void TcpChannel::terminate() {
  poisoned_ = true;
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }
  if (fd_ >= 0) {
    unregisterParentFd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpChannel::poison(const char* what) {
  poisoned_ = true;
  throw std::runtime_error(std::string("TcpChannel: ") + what);
}

void TcpChannel::send(std::span<const std::uint8_t> frame) {
  if (poisoned_) poison("worker previously failed");
  switch (writeFrameWithin(fd_, frame, deadlines_.send)) {
    case IoResult::Ok:
      return;
    case IoResult::Timeout:
      throw ChannelTimeout("TcpChannel: send deadline expired");
    case IoResult::Closed:
      break;
  }
  poison("worker unreachable (send failed)");
}

std::vector<std::uint8_t> TcpChannel::receive() {
  if (poisoned_) poison("worker previously failed");
  std::vector<std::uint8_t> frame;
  switch (readFrameWithin(fd_, frame, deadlines_.recv)) {
    case IoResult::Ok:
      return frame;
    case IoResult::Timeout:
      throw ChannelTimeout("TcpChannel: recv deadline expired");
    case IoResult::Closed:
      break;
  }
  poison("worker died before replying");
}

std::unique_ptr<ShardChannel> spawnTcpWorker(ChannelDeadlines deadlines) {
  const int listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd < 0) throw std::runtime_error("spawnTcpWorker: socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listenFd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listenFd, 1) != 0) {
    ::close(listenFd);
    throw std::runtime_error("spawnTcpWorker: bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listenFd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listenFd);
    throw std::runtime_error("spawnTcpWorker: getsockname failed");
  }
  const std::uint16_t port = ntohs(addr.sin_port);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(listenFd);
    throw std::runtime_error("spawnTcpWorker: fork failed");
  }
  if (pid == 0) {
    closeInheritedParentFds();
    const int conn = ::accept(listenFd, nullptr, nullptr);
    ::close(listenFd);
    if (conn < 0) ::_exit(3);
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::_exit(shardWorkerMain(conn));
  }
  ::close(listenFd);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  const auto fail = [&](const char* what) {
    if (fd >= 0) ::close(fd);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    throw std::runtime_error(std::string("spawnTcpWorker: ") + what);
  };
  if (fd < 0) fail("socket failed");
  if (!connectWithin(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr), deadlines.connect)) {
    fail("connect deadline expired");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<ShardChannel>(new TcpChannel(fd, pid, deadlines));
}

std::vector<std::unique_ptr<ShardChannel>> makeShardChannels(
    ShardTransportKind kind, std::size_t count, ChannelDeadlines deadlines) {
  std::vector<std::unique_ptr<ShardChannel>> channels;
  channels.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    switch (kind) {
      case ShardTransportKind::Subprocess:
        channels.push_back(std::make_unique<SubprocessChannel>(deadlines));
        break;
      case ShardTransportKind::Tcp:
        channels.push_back(spawnTcpWorker(deadlines));
        break;
      case ShardTransportKind::Loopback:
        channels.push_back(std::make_unique<LoopbackChannel>());
        break;
    }
  }
  return channels;
}

}  // namespace aimsc::shard
