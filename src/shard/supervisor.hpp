/// \file supervisor.hpp
/// \brief Worker lifecycle supervision: deadlines, retry with exponential
///        backoff + deterministic jitter, bounded respawn, heartbeats.
///
/// The `ShardSupervisor` sits between the coordinator and the raw
/// `ShardChannel`s and upgrades PR-8's "error, not hang" failure story to
/// "recover, then degrade, then error".  Per shard it runs the state
/// machine documented in docs/SHARDING.md:
///
///   healthy --fault--> retrying --respawn ok--> healthy
///                        |  (attempts / respawns / deadline exhausted)
///                        v
///                       dead  -> coordinator re-dispatches the shard's
///                                frames to survivors (degraded mode)
///
/// **Replay is byte-identical.**  The supervisor keeps every in-flight
/// frame; recovery respawns the worker and resends the SAME bytes.  A
/// worker's output is a pure function of the frame (lane seeds, assignment
/// and fleet shape all travel in it; warm state is bit-preserving), so a
/// replayed request produces the reply the original would have — the PR-8
/// determinism contract extends over crashes.
///
/// **Retries are fault-free.**  The `ShardFaultPlan` is consulted only in
/// `start()` (the original dispatch); `finish()`'s recovery loop never
/// re-injects, so chaos runs converge within the retry budget unless the
/// environment genuinely keeps killing workers.
///
/// The start()/finish() split preserves the coordinator's pipelined
/// fan-out: all sends go out back-to-back, recovery work happens at the
/// join, serialized only for the shard that actually failed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "shard/fault_plan.hpp"
#include "shard/transport.hpp"
#include "shard/wire.hpp"

namespace aimsc::shard {

/// Retry/respawn budgets.  Backoff for retry r (1-based) is
/// `min(initialBackoff * multiplier^(r-1), maxBackoff)` plus a
/// deterministic jitter in [0, backoff/2) drawn from
/// `mix64(jitterSeed, shard, dispatch, r)` — no wall-clock randomness, so
/// two identical chaos runs sleep identically.
struct RetryPolicy {
  std::uint32_t maxAttempts = 4;  ///< original + up to 3 retries
  std::uint32_t maxRespawns = 8;  ///< per shard, lifetime budget
  std::chrono::milliseconds initialBackoff{2};
  double backoffMultiplier = 2.0;
  std::chrono::milliseconds maxBackoff{250};
  std::chrono::milliseconds totalDeadline{15000};  ///< per dispatch
  bool pingOnRespawn = true;  ///< verify a respawned worker before resend
  std::uint64_t jitterSeed = 0x5eedf00dULL;
};

/// Fabric-level counters (merged into ServiceStats by the service layer).
struct FabricStats {
  std::uint64_t retries = 0;         ///< frames resent after a failure
  std::uint64_t respawns = 0;        ///< workers killed and restarted
  std::uint64_t timeouts = 0;        ///< channel deadline expiries
  std::uint64_t garbageReplies = 0;  ///< frames that failed decodeReply
  std::uint64_t faultsInjected = 0;  ///< ShardFaultPlan strikes
  std::uint64_t deadShards = 0;      ///< shards declared dead (ever)
};

/// A shard exhausted its retry/respawn/deadline budget and is dead.  The
/// coordinator catches this and re-dispatches the dead shard's frames to a
/// survivor (graceful degradation); a caller with no survivors left
/// propagates it as the request error.
class ShardDead : public std::runtime_error {
 public:
  ShardDead(std::size_t shard, const std::string& why)
      : std::runtime_error("shard " + std::to_string(shard) +
                           " is dead: " + why),
        shard_(shard) {}
  std::size_t shard() const { return shard_; }

 private:
  std::size_t shard_;
};

class ShardSupervisor {
 public:
  /// Builds a fresh replacement channel when a worker must be respawned.
  /// A null factory disables respawning: after the attempt budget the
  /// shard is declared dead (loopback fabrics can still retry in place).
  using ChannelFactory = std::function<std::unique_ptr<ShardChannel>()>;

  ShardSupervisor(std::vector<std::unique_ptr<ShardChannel>> channels,
                  ChannelFactory respawn, RetryPolicy policy = {},
                  ShardFaultPlan faults = {});

  std::size_t shardCount() const { return shards_.size(); }
  bool dead(std::size_t shard) const { return shards_.at(shard).dead; }
  const FabricStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

  /// Dispatches \p frame to \p shard: evaluates the fault plan (original
  /// dispatch only), stores the frame for replay, sends.  Never blocks on
  /// recovery — a failed send is recorded and handled in finish(), so the
  /// coordinator's fan-out stays pipelined.  Throws ShardDead only if the
  /// shard is already dead (callers check dead() first).
  void start(std::size_t shard, std::vector<std::uint8_t> frame);

  /// Joins the in-flight dispatch on \p shard, driving the full recovery
  /// loop: receive -> on timeout/garbage/death: kill, backoff, respawn,
  /// ping, resend -> until a decoded Result reply or the budget runs out
  /// (-> marks the shard dead and throws ShardDead).  An `ok == false`
  /// reply is returned as-is: it is a deterministic execution failure and
  /// retrying it would yield the same bytes.
  WireReply finish(std::size_t shard);

  /// One-shot dispatch (start + finish).
  WireReply roundTrip(std::size_t shard, std::vector<std::uint8_t> frame);

  /// Heartbeat: sends Ping and returns the worker's served-frame count, or
  /// nullopt if the worker failed to Pong within the recv deadline (no
  /// retry, no state change — callers decide what a missed beat means).
  std::optional<std::uint64_t> heartbeat(std::size_t shard);

  /// The live channel behind \p shard (single-threaded introspection only;
  /// NOT for sending — that would desync the frame pairing).
  ShardChannel& channel(std::size_t shard) {
    return *shards_.at(shard).channel;
  }

  /// Thread-safe snapshot of the shard's current worker pid (-1 for
  /// in-process workers or dead shards).  The ONE supervisor entry point
  /// that may be called from another thread — chaos tests' kill -9 threads
  /// read it while the dispatcher thread is mid-respawn, when touching
  /// channel() would race the unique_ptr swap.
  int workerPid(std::size_t shard) const {
    return shards_.at(shard).pid->load(std::memory_order_relaxed);
  }

 private:
  struct ShardState {
    std::unique_ptr<ShardChannel> channel;
    /// Concurrent-read pid mirror of `channel` (see workerPid()); behind a
    /// unique_ptr so ShardState stays movable.
    std::unique_ptr<std::atomic<int>> pid =
        std::make_unique<std::atomic<int>>(-1);
    std::vector<std::uint8_t> inflight;
    bool hasInflight = false;
    bool needRecovery = false;  ///< send failed / fault enacted pre-reply
    std::uint64_t dispatches = 0;
    std::uint64_t currentDispatch = 0;
    std::uint32_t respawns = 0;
    bool dead = false;
    std::chrono::steady_clock::time_point dispatchStart;
  };

  [[nodiscard]] bool respawn(std::size_t shard);
  void markDead(std::size_t shard);
  std::chrono::milliseconds backoffFor(std::size_t shard, const ShardState& st,
                                       std::uint32_t retry) const;

  std::vector<ShardState> shards_;
  ChannelFactory respawn_;
  RetryPolicy policy_;
  ShardFaultPlan faults_;
  FabricStats stats_;
};

/// Spawns \p count workers of \p kind under a supervisor whose respawn
/// factory creates more of the same (the standard fabric construction).
std::unique_ptr<ShardSupervisor> makeSupervisedFabric(
    ShardTransportKind kind, std::size_t count, ChannelDeadlines deadlines = {},
    RetryPolicy policy = {}, ShardFaultPlan faults = {});

}  // namespace aimsc::shard
