/// \file worker.hpp
/// \brief The shard worker: decodes wire requests, executes its assigned
///        lane slice bit-identically to the in-process dispatcher, and
///        encodes the owned rows + per-lane cost ledgers as a reply.
///
/// Execution contract (docs/SHARDING.md): the worker rebuilds the request's
/// full lane fleet through the SAME construction path as the in-process
/// service (`service::makeRequestExecutor` — lane i's seed derives from the
/// wire `laneSeedBase` exactly as `core::MatGroup` does), then runs ONLY
/// the tile tasks of the lanes its `TileAssignment` names.  Because lane
/// l's bits depend only on lane l's seed and its ascending tile sequence —
/// never on which other lanes run, or in which process — the rows this
/// worker produces are byte-identical to the rows lane l produces in a solo
/// run.  Morphology is the one cross-lane app: its dilate stage reads the
/// FULL eroded intermediate, so the worker runs stage 0 for every lane
/// (deterministic, identical in every worker) and stage 1 for owned lanes
/// only; ledgers are reported for owned lanes only, so the merged bill
/// still equals the solo fleet sum exactly.
///
/// Warm state mirrors the PR-7 daemon: a per-worker
/// `service::FaultModelCache` memoizes Monte-Carlo misdecision tables
/// (bit-preserving) and a per-worker arena pool is re-adopted by each
/// request's executor so stream-buffer capacity survives rebuilds (PR-5
/// arenas; reset rewinds cursors, keeps capacity).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/stream_arena.hpp"
#include "service/fault_model_cache.hpp"
#include "shard/wire.hpp"

namespace aimsc::shard {

class ShardWorker {
 public:
  /// \p exitOnCrashRequest: a `MessageKind::Crash` frame calls `_exit(42)`
  /// (the subprocess fault-injection hook); false (loopback) answers it
  /// with an error reply instead.
  explicit ShardWorker(bool exitOnCrashRequest = false);

  /// Serves one wire frame: decode -> execute -> encoded reply.  Malformed
  /// frames and execution failures come back as error replies (the frame
  /// layer never throws out of serve), so a coordinator always gets an
  /// answer from a live worker.
  std::vector<std::uint8_t> serve(std::span<const std::uint8_t> frame);

  /// Warm-state observability (tests assert cache reuse across requests).
  std::size_t faultCacheHits() const { return faultCache_.hits(); }
  std::size_t faultCacheSize() const { return faultCache_.size(); }

 private:
  WireReply execute(const WireRequest& wq);

  bool exitOnCrashRequest_;
  service::FaultModelCache faultCache_;
  std::vector<std::unique_ptr<core::StreamArena>> arenaPool_;
};

/// Subprocess entry point: serve length-prefixed frames from \p fd until
/// EOF (coordinator closed the socket) or a fatal I/O error.  Returns the
/// process exit code (0 on clean EOF).  Called in the fork()ed child by
/// SubprocessChannel; never returns on a Crash frame (`_exit(42)`).
int shardWorkerMain(int fd);

}  // namespace aimsc::shard
