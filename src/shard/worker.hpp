/// \file worker.hpp
/// \brief The shard worker: decodes wire requests, executes its assigned
///        lane slice bit-identically to the in-process dispatcher, and
///        encodes the owned rows + per-lane cost ledgers as a reply.
///
/// Execution contract (docs/SHARDING.md): the worker rebuilds the request's
/// full lane fleet through the SAME construction path as the in-process
/// service (`service::makeRequestExecutor` — lane i's seed derives from the
/// wire `laneSeedBase` exactly as `core::MatGroup` does), then runs ONLY
/// the tile tasks of the lanes its `TileAssignment` names.  Because lane
/// l's bits depend only on lane l's seed and its ascending tile sequence —
/// never on which other lanes run, or in which process — the rows this
/// worker produces are byte-identical to the rows lane l produces in a solo
/// run.  Morphology is the one cross-lane app: its dilate stage reads the
/// FULL eroded intermediate, so the worker runs stage 0 for every lane
/// (deterministic, identical in every worker) and stage 1 for owned lanes
/// only; ledgers are reported for owned lanes only, so the merged bill
/// still equals the solo fleet sum exactly.
///
/// Warm state mirrors the PR-7 daemon: a per-worker
/// `service::FaultModelCache` memoizes Monte-Carlo misdecision tables
/// (bit-preserving) and a per-worker arena pool is re-adopted by each
/// request's executor so stream-buffer capacity survives rebuilds (PR-5
/// arenas; reset rewinds cursors, keeps capacity).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/stream_arena.hpp"
#include "service/fault_model_cache.hpp"
#include "shard/wire.hpp"

namespace aimsc::shard {

class ShardWorker {
 public:
  /// \p exitOnCrashRequest: a `MessageKind::Crash` frame calls `_exit(42)`
  /// (the subprocess fault-injection hook); false (loopback) answers it
  /// with an error reply instead.
  explicit ShardWorker(bool exitOnCrashRequest = false);

  /// Serves one wire frame: decode -> execute -> encoded reply.  Malformed
  /// frames and execution failures come back as error replies (the frame
  /// layer never throws out of serve), so a coordinator always gets an
  /// answer from a live worker.  Two frame kinds break that rule by design:
  /// `Misbehave` arms a fault and returns an EMPTY vector (no reply — the
  /// request/reply pairing of Execute frames stays 1:1), and an Execute
  /// that fires an armed process-level fault returns empty while recording
  /// the action in `takePostServeAction()` for the serve loop to perform.
  std::vector<std::uint8_t> serve(std::span<const std::uint8_t> frame);

  /// The process-level fault the last serve() fired (CrashBeforeReply,
  /// HangBeforeReply or DropConnection), cleared by the call.  The serve
  /// loop performs it AFTER serve returns — the work has already been done,
  /// modeling a worker that dies between computing and replying.
  WorkerFault takePostServeAction() {
    const WorkerFault a = postAction_;
    postAction_ = WorkerFault::None;
    return a;
  }

  /// Execute frames served since construction (the Pong liveness payload).
  std::uint64_t served() const { return served_; }

  /// Warm-state observability (tests assert cache reuse across requests).
  std::size_t faultCacheHits() const { return faultCache_.hits(); }
  std::size_t faultCacheSize() const { return faultCache_.size(); }

 private:
  WireReply execute(const WireRequest& wq);

  bool exitOnCrashRequest_;
  service::FaultModelCache faultCache_;
  std::vector<std::unique_ptr<core::StreamArena>> arenaPool_;
  WorkerFault armedFault_ = WorkerFault::None;  ///< fires on next Execute
  WorkerFault postAction_ = WorkerFault::None;  ///< fired, process-level
  std::uint64_t served_ = 0;
};

/// The deterministic junk frame a `GarbageReply` fault emits (exposed so
/// tests can assert the coordinator rejects exactly this frame).  Framing
/// stays aligned — the junk is length-prefixed like any reply — but its
/// content fails decodeReply's magic check.
std::vector<std::uint8_t> garbageReplyFrame();

/// Subprocess entry point: serve length-prefixed frames from \p fd until
/// EOF (coordinator closed the socket) or a fatal I/O error.  Returns the
/// process exit code (0 on clean EOF).  Called in the fork()ed child by
/// SubprocessChannel / spawnTcpWorker; never returns on a Crash frame
/// (`_exit(42)`) or a fired crash/hang/drop fault (43 / hang / 44).
int shardWorkerMain(int fd);

/// Standalone TCP worker: binds 0.0.0.0:\p port and serves one accepted
/// connection at a time (fresh warm state per connection), forever.  The
/// remote end of `TcpChannel(host, port)`.  Returns nonzero only on
/// bind/listen failure.
int shardWorkerTcpMain(std::uint16_t port);

}  // namespace aimsc::shard
