#include "shard/supervisor.hpp"

#include <algorithm>
#include <thread>
#include <utility>

namespace aimsc::shard {

namespace {

/// One Ping/Pong exchange on a channel with NO in-flight Execute (anything
/// else would desync the frame pairing).  Any failure — send, deadline,
/// decode, wrong kind — reads as a missed beat.
std::optional<std::uint64_t> heartbeatOn(ShardChannel& ch) {
  try {
    ch.send(encodePing());
    const WireReply reply = decodeReply(ch.receive());
    if (reply.kind != ReplyKind::Pong) return std::nullopt;
    return reply.served;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

ShardSupervisor::ShardSupervisor(
    std::vector<std::unique_ptr<ShardChannel>> channels, ChannelFactory respawn,
    RetryPolicy policy, ShardFaultPlan faults)
    : respawn_(std::move(respawn)), policy_(policy), faults_(faults) {
  if (channels.empty()) {
    throw std::invalid_argument("ShardSupervisor: no channels");
  }
  shards_.resize(channels.size());
  for (std::size_t s = 0; s < channels.size(); ++s) {
    if (channels[s] == nullptr) {
      throw std::invalid_argument("ShardSupervisor: null channel");
    }
    shards_[s].channel = std::move(channels[s]);
    shards_[s].pid->store(shards_[s].channel->workerPid(),
                          std::memory_order_relaxed);
  }
}

void ShardSupervisor::start(std::size_t shard, std::vector<std::uint8_t> frame) {
  ShardState& st = shards_.at(shard);
  if (st.dead) throw ShardDead(shard, "dispatch to a dead shard");
  if (st.hasInflight) {
    throw std::logic_error("ShardSupervisor: dispatch already in flight");
  }
  st.inflight = std::move(frame);
  st.hasInflight = true;
  st.needRecovery = false;
  st.currentDispatch = st.dispatches++;
  st.dispatchStart = std::chrono::steady_clock::now();

  // Chaos strikes ONLY here, at the original dispatch — finish()'s
  // recovery loop never re-consults the plan, so retries are fault-free
  // and bounded recovery always converges.
  bool dropAtRecv = false;
  if (const auto site = faults_.faultFor(shard, st.currentDispatch)) {
    ++stats_.faultsInjected;
    switch (*site) {
      case FaultSite::DropAtSend:
        st.channel->terminate();  // the send below fails into recovery
        break;
      case FaultSite::DropAtRecv:
        dropAtRecv = true;
        break;
      case FaultSite::CrashBeforeReply:
      case FaultSite::HangBeforeReply:
      case FaultSite::GarbageReply:
        try {
          st.channel->send(encodeMisbehave(workerFaultFor(*site)));
        } catch (const std::exception&) {
          st.needRecovery = true;
        }
        break;
    }
  }
  if (!st.needRecovery) {
    try {
      st.channel->send(st.inflight);
    } catch (const std::exception&) {
      st.needRecovery = true;
    }
  }
  if (dropAtRecv && !st.needRecovery) {
    // The frame went out; the connection dies before the reply comes back.
    st.channel->terminate();
  }
}

WireReply ShardSupervisor::finish(std::size_t shard) {
  ShardState& st = shards_.at(shard);
  if (st.dead) throw ShardDead(shard, "join on a dead shard");
  if (!st.hasInflight) {
    throw std::logic_error("ShardSupervisor: finish with nothing in flight");
  }
  std::uint32_t attempt = 1;
  std::string lastError = "send failed at dispatch";
  for (;;) {
    if (!st.needRecovery) {
      try {
        WireReply reply = decodeReply(st.channel->receive());
        if (reply.kind != ReplyKind::Result) {
          throw DecodeError("Pong where a Result was expected");
        }
        // ok == false is a DETERMINISTIC execution failure — replaying the
        // same frame yields the same error, so it is returned, not retried.
        st.hasInflight = false;
        return reply;
      } catch (const ChannelTimeout& e) {
        ++stats_.timeouts;
        lastError = e.what();
      } catch (const DecodeError& e) {
        ++stats_.garbageReplies;
        lastError = e.what();
      } catch (const std::exception& e) {
        lastError = e.what();
      }
      st.needRecovery = true;
    }

    if (attempt >= policy_.maxAttempts) {
      markDead(shard);
      throw ShardDead(shard, "attempt budget exhausted (" + lastError + ")");
    }
    if (std::chrono::steady_clock::now() - st.dispatchStart >=
        policy_.totalDeadline) {
      markDead(shard);
      throw ShardDead(shard, "total deadline exceeded (" + lastError + ")");
    }

    const std::uint32_t retry = attempt;  // 1-based retry ordinal
    ++attempt;
    ++stats_.retries;
    std::this_thread::sleep_for(backoffFor(shard, st, retry));
    if (!respawn(shard)) {
      throw ShardDead(shard, "respawn budget exhausted (" + lastError + ")");
    }
    try {
      st.channel->send(st.inflight);  // byte-identical replay
      st.needRecovery = false;
    } catch (const std::exception& e) {
      lastError = e.what();  // burns another attempt next iteration
    }
  }
}

WireReply ShardSupervisor::roundTrip(std::size_t shard,
                                     std::vector<std::uint8_t> frame) {
  start(shard, std::move(frame));
  return finish(shard);
}

std::optional<std::uint64_t> ShardSupervisor::heartbeat(std::size_t shard) {
  ShardState& st = shards_.at(shard);
  if (st.dead) return std::nullopt;
  if (st.hasInflight) {
    throw std::logic_error("ShardSupervisor: heartbeat with a dispatch in "
                           "flight would desync the frame pairing");
  }
  return heartbeatOn(*st.channel);
}

bool ShardSupervisor::respawn(std::size_t shard) {
  ShardState& st = shards_[shard];
  if (!respawn_) {
    // No factory: retry in place is all we have, and only a channel that is
    // still healthy can carry the replay.  (A wedged-but-healthy worker is
    // a factory-fabric concern — without respawn we accept the risk that
    // the retry times out again and the attempt budget ends it.)
    if (st.channel->healthy()) return true;
    markDead(shard);
    return false;
  }
  if (st.respawns >= policy_.maxRespawns) {
    markDead(shard);
    return false;
  }
  st.channel->terminate();  // SIGKILL — the answer to hung AND dead alike
  st.pid->store(-1, std::memory_order_relaxed);
  st.channel = respawn_();
  st.pid->store(st.channel->workerPid(), std::memory_order_relaxed);
  ++st.respawns;
  ++stats_.respawns;
  if (policy_.pingOnRespawn && !heartbeatOn(*st.channel)) {
    // The newborn failed its first beat.  The channel exists, so let the
    // resend fail naturally and burn an attempt — no special casing.
  }
  return true;
}

void ShardSupervisor::markDead(std::size_t shard) {
  ShardState& st = shards_[shard];
  if (!st.dead) {
    st.dead = true;
    ++stats_.deadShards;
  }
  st.hasInflight = false;
  st.channel->terminate();
  st.pid->store(-1, std::memory_order_relaxed);
}

std::chrono::milliseconds ShardSupervisor::backoffFor(
    std::size_t shard, const ShardState& st, std::uint32_t retry) const {
  double ms = static_cast<double>(policy_.initialBackoff.count());
  for (std::uint32_t i = 1; i < retry; ++i) ms *= policy_.backoffMultiplier;
  ms = std::min(ms, static_cast<double>(policy_.maxBackoff.count()));
  const auto base = static_cast<std::int64_t>(ms);
  // Deterministic jitter in [0, base/2]: same run, same sleeps.
  const std::uint64_t key = reliability::faultSiteKey(
      policy_.jitterSeed, shard, st.currentDispatch, retry);
  const std::int64_t jitter =
      base >= 2 ? static_cast<std::int64_t>(key % (base / 2 + 1)) : 0;
  return std::chrono::milliseconds(base + jitter);
}

std::unique_ptr<ShardSupervisor> makeSupervisedFabric(ShardTransportKind kind,
                                                      std::size_t count,
                                                      ChannelDeadlines deadlines,
                                                      RetryPolicy policy,
                                                      ShardFaultPlan faults) {
  auto channels = makeShardChannels(kind, count, deadlines);
  ShardSupervisor::ChannelFactory factory = [kind, deadlines]() {
    return std::move(makeShardChannels(kind, 1, deadlines).front());
  };
  return std::make_unique<ShardSupervisor>(std::move(channels),
                                           std::move(factory), policy, faults);
}

}  // namespace aimsc::shard
