/// \file fault_plan.hpp
/// \brief Counter-based chaos injection for the shard fabric.
///
/// A `ShardFaultPlan` decides, per original dispatch, whether that dispatch
/// suffers one of five failures — and WHICH one — as a pure function of
/// `(seed, shard, dispatchIndex, site)`, using the same SplitMix64
/// counter-based draws as `reliability/FaultRng` (fault_rng.hpp).  Two
/// properties follow:
///
///  * **Reproducible chaos** — a chaos run with a given seed injects
///    exactly the same faults at exactly the same dispatches every time,
///    on any machine, so a chaos-suite failure replays deterministically.
///  * **Guaranteed convergence** — the plan is consulted ONLY when the
///    supervisor first dispatches a request (`ShardSupervisor::start`),
///    never on retries or degraded re-dispatches.  A retry is therefore
///    always fault-free at the injection layer, so bounded retries always
///    reach a clean execution (the worker may still genuinely die — the
///    supervisor handles that too, it just isn't the plan's doing).
///
/// The five sites cover both ends of the channel: the two drop sites are
/// enacted by the supervisor itself (killing the worker before the send /
/// after the send but before the reply), the other three are armed in the
/// worker via a `Misbehave` wire frame and fire on its next Execute.
#pragma once

#include <cstdint>
#include <optional>

#include "reliability/fault_rng.hpp"
#include "shard/wire.hpp"

namespace aimsc::shard {

/// Where along one dispatch a fault strikes.
enum class FaultSite : std::uint8_t {
  DropAtSend = 0,       ///< connection dies before the frame is sent
  CrashBeforeReply = 1, ///< worker executes, then dies without replying
  HangBeforeReply = 2,  ///< worker executes, then wedges (deadline fires)
  GarbageReply = 3,     ///< worker replies with a corrupt frame
  DropAtRecv = 4,       ///< connection dies after send, before the reply
};
constexpr std::size_t kFaultSiteCount = 5;

/// The Misbehave payload for worker-enacted sites; None for the two drop
/// sites (which the supervisor enacts locally).
constexpr WorkerFault workerFaultFor(FaultSite site) {
  switch (site) {
    case FaultSite::CrashBeforeReply: return WorkerFault::CrashBeforeReply;
    case FaultSite::HangBeforeReply: return WorkerFault::HangBeforeReply;
    case FaultSite::GarbageReply: return WorkerFault::GarbageReply;
    case FaultSite::DropAtSend:
    case FaultSite::DropAtRecv: break;
  }
  return WorkerFault::None;
}

/// Per-site injection rates in [0, 1] plus the chaos seed.  All-zero rates
/// (the default) disable injection entirely.
struct ShardFaultPlan {
  std::uint64_t seed = 0;
  double dropAtSend = 0.0;
  double crashBeforeReply = 0.0;
  double hangBeforeReply = 0.0;
  double garbageReply = 0.0;
  double dropAtRecv = 0.0;

  /// A plan with every site firing at \p rate — the chaos suite's blunt
  /// instrument.
  static ShardFaultPlan uniform(std::uint64_t seed, double rate) {
    return ShardFaultPlan{seed, rate, rate, rate, rate, rate};
  }

  double rate(FaultSite site) const {
    switch (site) {
      case FaultSite::DropAtSend: return dropAtSend;
      case FaultSite::CrashBeforeReply: return crashBeforeReply;
      case FaultSite::HangBeforeReply: return hangBeforeReply;
      case FaultSite::GarbageReply: return garbageReply;
      case FaultSite::DropAtRecv: return dropAtRecv;
    }
    return 0.0;
  }

  bool enabled() const {
    return dropAtSend > 0.0 || crashBeforeReply > 0.0 ||
           hangBeforeReply > 0.0 || garbageReply > 0.0 || dropAtRecv > 0.0;
  }

  /// The fault (if any) striking original dispatch \p dispatchIndex on
  /// \p shard.  First firing site wins; each site draws independently at
  /// coordinates (seed, shard, dispatchIndex, site).
  std::optional<FaultSite> faultFor(std::size_t shard,
                                    std::uint64_t dispatchIndex) const {
    if (!enabled()) return std::nullopt;
    for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
      const auto site = static_cast<FaultSite>(s);
      if (reliability::faultSiteBernoulli(seed, shard, dispatchIndex, s,
                                          rate(site))) {
        return site;
      }
    }
    return std::nullopt;
  }
};

}  // namespace aimsc::shard
