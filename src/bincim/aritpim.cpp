#include "bincim/aritpim.hpp"

#include <stdexcept>
#include <vector>

namespace aimsc::bincim {

namespace {

std::vector<bool> toBits(std::uint32_t v, int bits) {
  std::vector<bool> out(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) out[static_cast<std::size_t>(i)] = (v >> i) & 1u;
  return out;
}

std::uint32_t fromBits(const std::vector<bool>& bits) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= std::uint32_t{1} << i;
  }
  return v;
}

}  // namespace

std::uint32_t AritPim::add(std::uint32_t a, std::uint32_t b, int bits) {
  if (bits < 1 || bits > 31) throw std::invalid_argument("AritPim::add: bad width");
  const auto av = toBits(a, bits);
  const auto bv = toBits(b, bits);
  std::vector<bool> sum(static_cast<std::size_t>(bits) + 1);
  bool carry = false;
  for (int i = 0; i < bits; ++i) {
    const auto fa = engine_.fullAdder(av[static_cast<std::size_t>(i)],
                                      bv[static_cast<std::size_t>(i)], carry);
    sum[static_cast<std::size_t>(i)] = fa.sum;
    carry = fa.carry;
  }
  sum[static_cast<std::size_t>(bits)] = carry;
  return fromBits(sum);
}

std::uint32_t AritPim::subSaturating(std::uint32_t a, std::uint32_t b, int bits) {
  if (bits < 1 || bits > 31) throw std::invalid_argument("AritPim::sub: bad width");
  const auto av = toBits(a, bits);
  const auto bv = toBits(b, bits);
  std::vector<bool> diff(static_cast<std::size_t>(bits));
  bool carry = true;  // +1 of the two's complement
  for (int i = 0; i < bits; ++i) {
    const bool nb = engine_.notGate(bv[static_cast<std::size_t>(i)]);
    const auto fa = engine_.fullAdder(av[static_cast<std::size_t>(i)], nb, carry);
    diff[static_cast<std::size_t>(i)] = fa.sum;
    carry = fa.carry;
  }
  // carry == 0 -> borrow -> negative -> clamp to 0.
  if (!carry) return 0;
  return fromBits(diff);
}

std::uint32_t AritPim::mul(std::uint32_t a, std::uint32_t b, int bits) {
  if (bits < 1 || bits > 15) throw std::invalid_argument("AritPim::mul: bad width");
  std::uint32_t acc = 0;
  const int accBits = 2 * bits;
  for (int i = 0; i < bits; ++i) {
    // Partial product: AND of b's bit i with every bit of a, shifted by i.
    std::uint32_t pp = 0;
    const bool bi = (b >> i) & 1u;
    for (int j = 0; j < bits; ++j) {
      const bool pj = engine_.andGate(bi, (a >> j) & 1u);
      if (pj) pp |= std::uint32_t{1} << (i + j);
    }
    acc = add(acc, pp, accBits) & ((std::uint32_t{1} << accBits) - 1);
  }
  return acc;
}

std::uint32_t AritPim::div(std::uint32_t num, std::uint32_t den, int numBits,
                           int denBits) {
  if (numBits < 1 || numBits > 24 || denBits < 1 || denBits > 24) {
    throw std::invalid_argument("AritPim::div: bad width");
  }
  const std::uint32_t qMax = (std::uint32_t{1} << numBits) - 1;
  // Restoring division over numBits quotient bits; remainder width is
  // denBits + 1.  A zero denominator saturates (matches the catastrophic
  // behaviour the paper observes for faulty integer division in matting).
  std::uint32_t rem = 0;
  std::uint32_t q = 0;
  const int remBits = denBits + 2;
  for (int i = numBits - 1; i >= 0; --i) {
    rem = (rem << 1) | ((num >> i) & 1u);
    rem &= (std::uint32_t{1} << remBits) - 1;
    // Trial subtraction rem - den through the gate engine.
    const auto rv = toBits(rem, remBits);
    const auto dv = toBits(den, remBits);
    std::vector<bool> diff(static_cast<std::size_t>(remBits));
    bool carry = true;
    for (int j = 0; j < remBits; ++j) {
      const bool nd = engine_.notGate(dv[static_cast<std::size_t>(j)]);
      const auto fa = engine_.fullAdder(rv[static_cast<std::size_t>(j)], nd, carry);
      diff[static_cast<std::size_t>(j)] = fa.sum;
      carry = fa.carry;
    }
    if (carry) {  // rem >= den: commit subtraction, set quotient bit
      rem = fromBits(diff);
      q |= std::uint32_t{1} << i;
    }
  }
  if (den == 0) return qMax;
  return q > qMax ? qMax : q;
}

}  // namespace aimsc::bincim
