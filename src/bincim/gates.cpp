#include "bincim/gates.hpp"

namespace aimsc::bincim {

MagicEngine::MagicEngine(const reram::FaultModel* faultModel, std::uint64_t seed,
                         double faultScale)
    : faultModel_(faultModel), faultScale_(faultScale), eng_(seed) {}

bool MagicEngine::injectOnce(bool ideal, double p) {
  ++gateOps_;
  if (p > 0.0 && unit_(eng_) < p) return !ideal;
  return ideal;
}

bool MagicEngine::inject(bool ideal, reram::SlOp op, int ones, int rows) {
  const double p =
      faultModel_ == nullptr
          ? 0.0
          : faultScale_ * faultModel_->misdecisionProb(op, ones, rows);
  const bool first = injectOnce(ideal, p);
  if (protection_ == Protection::None) return first;
  if (protection_ == Protection::Dmr) {
    // DMR with retry: a second execution checks the first; on disagreement
    // a third one breaks the tie.
    const bool second = injectOnce(ideal, p);
    if (first == second) return first;
    return injectOnce(ideal, p);
  }
  // TMR: unconditional triple execution, majority vote.
  const bool second = injectOnce(ideal, p);
  const bool third = injectOnce(ideal, p);
  return (first && second) || (first && third) || (second && third);
}

bool MagicEngine::norGate(bool a, bool b) {
  const int ones = (a ? 1 : 0) + (b ? 1 : 0);
  return inject(!(a || b), reram::SlOp::Nor, ones, 2);
}

bool MagicEngine::notGate(bool a) {
  return inject(!a, reram::SlOp::Not, a ? 1 : 0, 1);
}

bool MagicEngine::orGate(bool a, bool b) { return notGate(norGate(a, b)); }

bool MagicEngine::andGate(bool a, bool b) {
  return norGate(notGate(a), notGate(b));
}

bool MagicEngine::xorGate(bool a, bool b) {
  // 5-NOR XOR: the classic 4-NOR network computes XNOR; a final inverter
  // gives XOR.  n1 = NOR(a,b); xnor = NOR(NOR(a,n1), NOR(b,n1)).
  const bool n1 = norGate(a, b);
  const bool xnor = norGate(norGate(a, n1), norGate(b, n1));
  return notGate(xnor);
}

MagicEngine::FullAdderOut MagicEngine::fullAdder(bool a, bool b, bool cin) {
  const bool axb = xorGate(a, b);
  const bool sum = xorGate(axb, cin);
  // carry = MAJ(a, b, cin) = OR(AND(a,b), AND(cin, a XOR b))
  const bool t1 = andGate(a, b);
  const bool t2 = andGate(cin, axb);
  const bool carry = orGate(t1, t2);
  return {sum, carry};
}

}  // namespace aimsc::bincim
