/// \file aritpim.hpp
/// \brief Bit-serial in-memory binary arithmetic — the AritPIM-style binary
///        CIM baseline the paper compares against ([35], Table IV, Fig 4/5).
///
/// All operations are built from MagicEngine gates so that (a) gate-cycle
/// counts accumulate for the cost model and (b) device faults strike
/// individual gates, where a single high-bit error corrupts the result
/// badly — the effect behind the paper's 47% average quality drop for
/// traditional arithmetic (vs 5% for SC).
///
/// Complexities mirror the paper's discussion: addition O(n) (ripple),
/// multiplication O(n^2) (shift-add), division O(n^2) (restoring, "requires
/// O(n^2) write cycles").
#pragma once

#include <cstdint>

#include "bincim/gates.hpp"

namespace aimsc::bincim {

class AritPim {
 public:
  explicit AritPim(MagicEngine& engine) : engine_(engine) {}

  /// \p bits-wide ripple-carry addition; result is (bits+1) wide.
  std::uint32_t add(std::uint32_t a, std::uint32_t b, int bits);

  /// a - b (two's complement); negative results clamp to 0 via the borrow.
  std::uint32_t subSaturating(std::uint32_t a, std::uint32_t b, int bits);

  /// \p bits x \p bits shift-add multiplication; result 2*bits wide.
  std::uint32_t mul(std::uint32_t a, std::uint32_t b, int bits);

  /// Restoring division: \p numBits-wide numerator / \p denBits-wide
  /// denominator -> numBits-wide quotient (saturates on overflow/zero-div).
  std::uint32_t div(std::uint32_t num, std::uint32_t den, int numBits,
                    int denBits);

  MagicEngine& engine() { return engine_; }

 private:
  MagicEngine& engine_;
};

}  // namespace aimsc::bincim
