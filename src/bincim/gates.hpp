/// \file gates.hpp
/// \brief MAGIC-style in-memory Boolean gate engine for the binary CIM
///        baseline (AritPIM [35], MAGIC [23]).
///
/// Binary CIM computes with *stateful* logic: each NOR gate is a write
/// cycle programming an output cell from the currents of the input cells.
/// Like scouting logic, the decision is threshold-based and fails when the
/// device distributions overlap, so the same FaultModel supplies the
/// per-gate misdecision probabilities (paper Sec. IV-C: "In digital CIM, a
/// fault is a bit flip").  Every gate execution is counted; the counts feed
/// the system model's binary-CIM cost and the Table IV fault study.
#pragma once

#include <cstdint>
#include <random>

#include "reram/fault_model.hpp"

namespace aimsc::bincim {

class MagicEngine {
 public:
  /// \param faultModel nullptr = fault-free execution
  /// \param faultScale scales each gate's misdecision probability.  Our
  ///        pedagogical decomposition (5-NOR XOR, 18-NOR full adder) issues
  ///        ~4x the gate cycles of an optimized AritPIM mapping, so an
  ///        equal-fault-surface comparison uses faultScale ~ 0.25 (same
  ///        rationale as the analytic cycle counts in the cost profile).
  explicit MagicEngine(const reram::FaultModel* faultModel = nullptr,
                       std::uint64_t seed = 0xb17c, double faultScale = 1.0);

  /// Temporal-redundancy protection for binary CIM (the "costly protection
  /// scheme" discussion of Sec. IV-C / [41]): Dmr executes each gate twice
  /// and breaks disagreements with a third execution (~2.06x gate cycles,
  /// residual error ~p^2); Tmr always executes three times and takes the
  /// majority (3x gate cycles, residual error ~3p^2 — the retry-and-vote
  /// knob of the reliability campaign, cost-predictable unlike Dmr).
  enum class Protection { None, Dmr, Tmr };
  void setProtection(Protection p) { protection_ = p; }
  Protection protection() const { return protection_; }

  /// Primitive stateful gates (one write cycle each).
  bool norGate(bool a, bool b);
  bool notGate(bool a);

  /// Composite gates built from NOR/NOT primitives (costs accumulate).
  bool orGate(bool a, bool b);
  bool andGate(bool a, bool b);
  bool xorGate(bool a, bool b);

  struct FullAdderOut {
    bool sum;
    bool carry;
  };
  /// Full adder composed of the primitives above.
  FullAdderOut fullAdder(bool a, bool b, bool cin);

  /// Total primitive gate executions (MAGIC write cycles) so far.
  std::uint64_t gateOps() const { return gateOps_; }
  void resetCounter() { gateOps_ = 0; }

 private:
  bool inject(bool ideal, reram::SlOp op, int ones, int rows);

  bool injectOnce(bool ideal, double p);

  const reram::FaultModel* faultModel_;
  double faultScale_;
  Protection protection_ = Protection::None;
  std::uint64_t gateOps_ = 0;
  std::mt19937_64 eng_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace aimsc::bincim
