/// \file ticket.hpp
/// \brief Async handle for a submitted service request, plus the typed
///        redemption outcome.
///
/// A `Ticket` is the whole client-side state: an opaque id minted by
/// `AcceleratorService::submit`.  Clients poll or wait on it; the service
/// drops its side of the bookkeeping when a wait resolves, so a ticket is
/// single-redemption.
///
/// Two redemption styles exist: `wait`/`waitFor` return a bare
/// `RequestResult` and THROW on execution failure; `waitOutcome` /
/// `waitOutcomeFor` return a `TicketOutcome` whose `TicketStatus` encodes
/// failure as data — the form supervision-aware clients use, since a
/// degraded-but-byte-identical success and a hard failure deserve
/// different handling, not different control flow.
#pragma once

#include <cstdint>
#include <string>

#include "service/request.hpp"

namespace aimsc::service {

struct Ticket {
  std::uint64_t id = 0;

  bool valid() const { return id != 0; }
};

/// How a request's execution ended.
enum class TicketStatus : std::uint8_t {
  Ok = 0,        ///< clean execution on the request's own shards
  Degraded = 1,  ///< recovered onto stand-in shards; bytes still identical
  Failed = 2,    ///< execution failed; `error` says why, `result` is void
};

/// Typed redemption result (`waitOutcome`): status + error as data instead
/// of an exception, so all three endings flow through one return path.
struct TicketOutcome {
  TicketStatus status = TicketStatus::Ok;
  std::string error;     ///< set when status == Failed
  RequestResult result;  ///< meaningful unless status == Failed

  bool ok() const { return status != TicketStatus::Failed; }
};

}  // namespace aimsc::service
