/// \file ticket.hpp
/// \brief Async handle for a submitted service request.
///
/// A `Ticket` is the whole client-side state: an opaque id minted by
/// `AcceleratorService::submit`.  Clients poll or wait on it; the service
/// drops its side of the bookkeeping when `wait` resolves, so a ticket is
/// single-redemption.
#pragma once

#include <cstdint>

namespace aimsc::service {

struct Ticket {
  std::uint64_t id = 0;

  bool valid() const { return id != 0; }
};

}  // namespace aimsc::service
