#include "service/request.hpp"

#include <stdexcept>
#include <string>

namespace aimsc::service {

namespace {

void requireFrame(const img::ImageView& v, const char* role) {
  if (v.data() == nullptr || v.empty()) {
    throw std::invalid_argument(std::string("service::Request: missing ") +
                                role + " frame");
  }
}

void requireSameShape(const img::ImageView& a, const img::ImageView& b,
                      const char* what) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument(
        std::string("service::Request: frame shape mismatch (") + what + ")");
  }
}

}  // namespace

OutputShape outputShapeFor(const Request& q) {
  requireFrame(q.src, "src");
  switch (q.app) {
    case apps::AppKind::Compositing:
      requireFrame(q.aux1, "foreground (aux1)");
      requireFrame(q.aux2, "alpha (aux2)");
      requireSameShape(q.src, q.aux1, "background vs foreground");
      requireSameShape(q.src, q.aux2, "background vs alpha");
      return {q.src.width(), q.src.height()};
    case apps::AppKind::Matting:
      requireFrame(q.aux1, "background (aux1)");
      requireFrame(q.aux2, "foreground (aux2)");
      requireSameShape(q.src, q.aux1, "composite vs background");
      requireSameShape(q.src, q.aux2, "composite vs foreground");
      return {q.src.width(), q.src.height()};
    case apps::AppKind::Bilinear:
      if (q.upscaleFactor < 1) {
        throw std::invalid_argument("service::Request: bad upscaleFactor");
      }
      return {q.src.width() * q.upscaleFactor,
              q.src.height() * q.upscaleFactor};
    case apps::AppKind::Filters:
    case apps::AppKind::Gamma:
    case apps::AppKind::Morphology:
      return {q.src.width(), q.src.height()};
  }
  throw std::invalid_argument("service::Request: bad app");
}

void validateRequest(const Request& q) {
  const OutputShape shape = outputShapeFor(q);
  if (q.out.data() == nullptr) {
    throw std::invalid_argument("service::Request: missing output buffer");
  }
  if (q.out.width() != shape.width || q.out.height() != shape.height) {
    throw std::invalid_argument(
        "service::Request: output buffer is " + std::to_string(q.out.width()) +
        "x" + std::to_string(q.out.height()) + ", app produces " +
        std::to_string(shape.width) + "x" + std::to_string(shape.height));
  }
  if (q.streamLength == 0) {
    throw std::invalid_argument("service::Request: zero streamLength");
  }
  if (q.redundancy.replicas == 0) {
    throw std::invalid_argument("service::Request: zero replicas");
  }
}

}  // namespace aimsc::service
