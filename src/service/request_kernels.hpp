/// \file request_kernels.hpp
/// \brief The single request -> lane-fleet construction path shared by the
///        in-process dispatcher (AcceleratorService) and the shard worker
///        (shard::ShardWorker).
///
/// The service's byte-exactness contract — a request's output bytes are a
/// pure function of (request fields, tenant seed namespace), equal to the
/// one-shot apps::runApp — only survives process fan-out if every executor
/// that touches the request is built IDENTICALLY: same TileExecutorConfig
/// derivation, same staging-image initialization, same kernel closures.
/// These helpers are that one definition; both executors call them, so the
/// two paths cannot drift.
#pragma once

#include <memory>

#include "core/tile_executor.hpp"
#include "img/image.hpp"
#include "service/fault_model_cache.hpp"
#include "service/request.hpp"

namespace aimsc::service {

/// The fleet-shape half of ServiceConfig — the part of the bit contract a
/// shard worker must reproduce (carried on the wire; see shard::WireRequest).
struct ExecShape {
  std::size_t lanes = 4;
  std::size_t rowsPerTile = 4;
};

/// Per-replica lane fleet for one request — the exact configuration
/// apps::runReplica builds, so a service request is bit-identical to the
/// equivalent runApp call (tests assert this).  The daemon-only difference
/// is warm state: device-variability mats draw their misdecision tables
/// from \p faultCache instead of re-running the Monte-Carlo per call (a
/// bit-preserving memoization — see fault_model_cache.hpp).  \p seed is the
/// fleet master seed (already namespaced and replica-strided); lanes derive
/// their own seeds from it inside the executor.
std::unique_ptr<core::TileExecutor> makeRequestExecutor(
    const ExecShape& shape, const Request& q, std::uint64_t seed,
    FaultModelCache& faultCache);

/// Stage-0 staging image for \p q: what the stage-0 kernel writes into.
/// Smoothing copies the source through (border rows/columns pass through
/// untouched); morphology copies the source as the erode intermediate; the
/// rest start blank at the output shape and are fully overwritten.
img::Image makeStage0Staging(const Request& q, const OutputShape& shape);

/// Stage-0 tile kernel for \p q writing \p out (for morphology: the erode
/// pass into the intermediate).  Views and spans are captured by value —
/// they are pointers into client/staging memory that must outlive the wave.
core::TileExecutor::ArenaTileKernel stage0Kernel(const Request& q,
                                                 img::Image& out);

/// Stage-1 kernel (morphology only): the dilate pass over the eroded
/// intermediate, mirroring openKernelTiled's second forEachTile on the
/// SAME lane fleet.  The caller seeds `out.pixels() = tmp.pixels()` first
/// (borders pass through), exactly as the whole-image form does.
core::TileExecutor::ArenaTileKernel stage1Kernel(const img::Image& tmp,
                                                 img::Image& out);

}  // namespace aimsc::service
