/// \file request.hpp
/// \brief The service request contract: zero-copy frames in, zero-copy
///        frame out, per-request reliability overrides, per-tenant seed
///        namespacing.
///
/// A request carries *views* over client-owned pixel buffers
/// (`img::ImageView` in, `img::ImageSpan` out) — the daemon never copies a
/// frame on the way into the kernels, and the voted result is written
/// straight into the client's output buffer at join time.  The client
/// guarantees every buffer outlives the ticket.
///
/// Frame roles per app (unused views stay empty):
///
///  | app         | `src`          | `aux1`       | `aux2`       | output        |
///  |-------------|----------------|--------------|--------------|---------------|
///  | Compositing | background     | foreground   | alpha        | composite     |
///  | Matting     | composite (I)  | background   | foreground   | alpha matte   |
///  | Bilinear    | source         | —            | —            | w·f × h·f     |
///  | Filters     | source         | —            | —            | smoothed      |
///  | Gamma       | source         | —            | —            | corrected     |
///  | Morphology  | source         | —            | —            | opened        |
///
/// Determinism contract (tested by tests/test_service.cpp): the output
/// bytes are a pure function of (request fields, tenant seed namespace) —
/// byte-identical whether the request ran solo or batched with strangers,
/// at any worker-thread count, under any tenant interleaving.
#pragma once

#include <cstdint>

#include "apps/runner.hpp"
#include "img/image.hpp"
#include "reliability/fault_plan.hpp"
#include "reliability/redundancy.hpp"

namespace aimsc::service {

/// Tenant identity.  Tenants are implicit — first use creates the ledger;
/// `AcceleratorService::setTenantSeedNamespace` gives a tenant its own seed
/// universe (namespace 0 = identity, i.e. `seed` is used as-is).
using TenantId = std::uint32_t;

struct Request {
  apps::AppKind app = apps::AppKind::Gamma;
  core::DesignKind design = core::DesignKind::SwScLfsr;

  img::ImageView src;   ///< primary frame (see the role table above)
  img::ImageView aux1;  ///< second frame (compositing / matting)
  img::ImageView aux2;  ///< third frame (compositing / matting)

  img::ImageSpan out;  ///< client output buffer, sized per the role table

  double gamma = 2.2;             ///< Gamma app exponent
  std::size_t upscaleFactor = 2;  ///< Bilinear app factor
  std::size_t streamLength = 256;

  /// Request seed inside the tenant's namespace: same (tenant, seed,
  /// fields) -> same output bytes, always.
  std::uint64_t seed = 42;

  /// Per-request reliability overrides (the unified contract of
  /// docs/RELIABILITY.md; default = fault-free, no redundancy).
  reliability::FaultPlan faults{};
  reliability::Redundancy redundancy{};
};

/// Expected output width/height for \p q (throws std::invalid_argument on
/// missing/mismatched input frames — the same checks submit() performs).
struct OutputShape {
  std::size_t width = 0;
  std::size_t height = 0;
};
OutputShape outputShapeFor(const Request& q);

/// Validates frames and the output span; throws std::invalid_argument with
/// a reason.  Called by submit(), exposed for clients that want to check
/// before building a buffer.
void validateRequest(const Request& q);

/// What a resolved ticket returns: the mitigation cost ledgers (summed over
/// all replicas, exactly as apps::runAppDetailed reports them) plus the
/// serving metadata the benches aggregate.
struct RequestResult {
  reram::EventCounts events;
  std::uint64_t opCount = 0;

  double queueMicros = 0;  ///< submit -> batch formation
  double execMicros = 0;   ///< batch wall time (shared by all riders)
  std::size_t batchSize = 1;  ///< occupancy of the batch this request rode

  /// True when some lane slice ran on a stand-in shard because its owner
  /// was dead (shard fabric only).  The output bytes are identical either
  /// way — degraded mode is a capacity statement, not a quality one.
  bool degraded = false;
};

}  // namespace aimsc::service
