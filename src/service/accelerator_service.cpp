#include "service/accelerator_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "apps/bilinear.hpp"
#include "apps/compositing.hpp"
#include "apps/filters.hpp"
#include "apps/matting.hpp"
#include "apps/morphology.hpp"
#include "core/tile_executor.hpp"
#include "reliability/fault_rng.hpp"

namespace aimsc::service {

namespace {

using Clock = std::chrono::steady_clock;

double microsSince(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/// Per-replica lane fleet for one request — the exact configuration
/// apps::runReplica builds, so a service request is bit-identical to the
/// equivalent runApp call (tests assert this).  The daemon-only difference
/// is warm state: device-variability mats draw their misdecision tables
/// from \p faultCache instead of re-running the Monte-Carlo per call (a
/// bit-preserving memoization — see fault_model_cache.hpp).
std::unique_ptr<core::TileExecutor> makeExecutor(const ServiceConfig& sc,
                                                 const Request& q,
                                                 std::uint64_t seed,
                                                 FaultModelCache& faultCache) {
  if (q.design == core::DesignKind::ReramSc) {
    core::TileExecutorConfig tc;
    tc.lanes = sc.lanes;
    tc.threads = 0;  // the service pool runs the wave, not the executor
    tc.rowsPerTile = sc.rowsPerTile;
    tc.mat.streamLength = q.streamLength;
    tc.mat.deviceVariability = q.faults.deviceVariability;
    if (q.faults.deviceVariability) tc.mat.device = q.faults.device;
    tc.mat.faultModelSamples = q.faults.faultModelSamples;
    tc.mat.seed = seed;
    tc.mat.faultModelProvider = faultCache.provider();
    tc.faults = q.faults;
    return std::make_unique<core::TileExecutor>(tc);
  }
  core::BackendFactoryConfig bc;
  bc.streamLength = q.streamLength;
  bc.seed = seed;
  bc.faults = q.faults;
  core::ParallelConfig par;
  par.lanes = sc.lanes;
  par.threads = 0;
  par.rowsPerTile = sc.rowsPerTile;
  return std::make_unique<core::TileExecutor>(
      core::makeBackendLanes(q.design, bc, sc.lanes), par);
}

}  // namespace

/// Everything one queued request carries through the pipeline.  The frame
/// views alias client memory; replica outputs are service-owned staging
/// that dies with the batch (the voted bytes leave through `request.out`).
struct AcceleratorService::Pending {
  TenantId tenant = 0;
  Request request;
  std::uint64_t effectiveSeed = 0;
  std::uint64_t id = 0;
  Clock::time_point submitTime;

  // Batch-local execution state (dispatcher only).
  std::vector<std::unique_ptr<core::TileExecutor>> execs;  // one per replica
  std::vector<img::Image> replicaOut;                      // one per replica
  std::vector<img::Image> morphTmp;  // morphology stage-0 intermediates

  // Completion (guarded by the service ticket mutex).
  bool done = false;
  std::string error;
  RequestResult result;
};

namespace {

/// Stage-0 tile kernel for \p q writing \p out (for morphology: the erode
/// pass into the intermediate).  Views and spans are captured by value —
/// they are pointers into client/staging memory that outlives the wave.
core::TileExecutor::ArenaTileKernel stage0Kernel(const Request& q,
                                                 img::Image& out) {
  const img::ImageSpan dst(out);
  switch (q.app) {
    case apps::AppKind::Compositing: {
      const apps::CompositingFrames frames(q.src, q.aux1, q.aux2);
      return [frames, dst](core::ScBackend& b, core::StreamArena& arena,
                           std::size_t r0, std::size_t r1) {
        apps::compositeKernelRows(frames, b, arena, dst, r0, r1);
      };
    }
    case apps::AppKind::Matting: {
      const apps::MattingFrames frames(q.src, q.aux1, q.aux2);
      return [frames, dst](core::ScBackend& b, core::StreamArena& arena,
                           std::size_t r0, std::size_t r1) {
        apps::mattingKernelRows(frames, b, arena, dst, r0, r1);
      };
    }
    case apps::AppKind::Bilinear: {
      const img::ImageView src = q.src;
      const std::size_t factor = q.upscaleFactor;
      return [src, factor, dst](core::ScBackend& b, core::StreamArena& arena,
                                std::size_t r0, std::size_t r1) {
        apps::upscaleKernelRows(src, factor, b, arena, dst, r0, r1);
      };
    }
    case apps::AppKind::Filters: {
      const img::ImageView src = q.src;
      return [src, dst](core::ScBackend& b, core::StreamArena& arena,
                        std::size_t r0, std::size_t r1) {
        apps::smoothKernelRows(src, b, arena, dst, r0, r1);
      };
    }
    case apps::AppKind::Gamma: {
      const img::ImageView src = q.src;
      const double gamma = q.gamma;
      return [src, gamma, dst](core::ScBackend& b, core::StreamArena& arena,
                               std::size_t r0, std::size_t r1) {
        apps::gammaKernelRows(src, gamma, b, arena, dst, r0, r1);
      };
    }
    case apps::AppKind::Morphology: {
      const img::ImageView src = q.src;
      return [src, dst](core::ScBackend& b, core::StreamArena& arena,
                        std::size_t r0, std::size_t r1) {
        apps::erodeKernelRows(src, b, arena, dst, r0, r1);
      };
    }
  }
  throw std::invalid_argument("service: bad app");
}

/// Stage-1 kernel (morphology only): the dilate pass over the eroded
/// intermediate, mirroring openKernelTiled's second forEachTile on the
/// SAME lane fleet.
core::TileExecutor::ArenaTileKernel stage1Kernel(const img::Image& tmp,
                                                 img::Image& out) {
  const img::ImageView src(tmp);
  const img::ImageSpan dst(out);
  return [src, dst](core::ScBackend& b, core::StreamArena& arena,
                    std::size_t r0, std::size_t r1) {
    apps::dilateKernelRows(src, b, arena, dst, r0, r1);
  };
}

}  // namespace

AcceleratorService::AcceleratorService(const ServiceConfig& config)
    : config_(config),
      queue_(config.queueCapacity),
      pool_(config.workerThreads),
      paused_(config.startPaused) {
  if (config_.lanes == 0 || config_.rowsPerTile == 0 ||
      config_.maxBatch == 0 || config_.queueCapacity == 0) {
    throw std::invalid_argument("ServiceConfig: zero-sized knob");
  }
  dispatcher_ = std::thread([this] { dispatchLoop(); });
}

AcceleratorService::~AcceleratorService() { shutdown(); }

std::uint64_t AcceleratorService::namespacedSeed(TenantId tenant,
                                                 std::uint64_t seed) const {
  std::uint64_t ns = 0;
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    const auto it = ledgers_.find(tenant);
    if (it != ledgers_.end()) ns = it->second.seedNamespace;
  }
  if (ns == 0) return seed;
  // Re-key through the mixer so tenant universes never collide with each
  // other or with the lane/replica seed strides.
  return reliability::mix64(ns ^ (seed + 0x9e3779b97f4a7c15ull));
}

std::shared_ptr<AcceleratorService::Pending> AcceleratorService::makePending(
    TenantId tenant, const Request& request) {
  auto p = std::make_shared<Pending>();
  p->tenant = tenant;
  p->request = request;
  p->effectiveSeed = namespacedSeed(tenant, request.seed);
  p->submitTime = Clock::now();
  return p;
}

Ticket AcceleratorService::registerTicket(
    const std::shared_ptr<Pending>& pending) {
  std::lock_guard<std::mutex> lock(ticketMutex_);
  const std::uint64_t id = nextTicket_++;
  pending->id = id;
  tickets_.emplace(id, pending);
  return Ticket{id};
}

Ticket AcceleratorService::submit(TenantId tenant, const Request& request) {
  validateRequest(request);
  auto pending = makePending(tenant, request);
  const Ticket ticket = registerTicket(pending);
  if (!queue_.push(pending)) {
    std::lock_guard<std::mutex> lock(ticketMutex_);
    tickets_.erase(ticket.id);
    throw std::runtime_error("AcceleratorService: stopped");
  }
  return ticket;
}

std::optional<Ticket> AcceleratorService::trySubmit(TenantId tenant,
                                                    const Request& request) {
  validateRequest(request);
  auto pending = makePending(tenant, request);
  const Ticket ticket = registerTicket(pending);
  if (!queue_.tryPush(pending)) {
    std::lock_guard<std::mutex> lock(ticketMutex_);
    tickets_.erase(ticket.id);
    return std::nullopt;
  }
  return ticket;
}

bool AcceleratorService::poll(const Ticket& ticket) const {
  std::lock_guard<std::mutex> lock(ticketMutex_);
  const auto it = tickets_.find(ticket.id);
  return it == tickets_.end() || it->second->done;
}

RequestResult AcceleratorService::wait(const Ticket& ticket) {
  std::shared_ptr<Pending> pending;
  {
    std::unique_lock<std::mutex> lock(ticketMutex_);
    const auto it = tickets_.find(ticket.id);
    if (it == tickets_.end()) {
      throw std::invalid_argument(
          "AcceleratorService: unknown or already-redeemed ticket");
    }
    pending = it->second;
    ticketCv_.wait(lock, [&] { return pending->done; });
    tickets_.erase(ticket.id);
  }
  if (!pending->error.empty()) throw std::runtime_error(pending->error);
  return pending->result;
}

RequestResult AcceleratorService::run(TenantId tenant, const Request& request) {
  return wait(submit(tenant, request));
}

void AcceleratorService::setTenantSeedNamespace(TenantId tenant,
                                                std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(statsMutex_);
  ledgers_[tenant].seedNamespace = ns;
}

TenantLedger AcceleratorService::tenantLedger(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  const auto it = ledgers_.find(tenant);
  return it == ledgers_.end() ? TenantLedger{} : it->second;
}

ServiceStats AcceleratorService::stats() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  ServiceStats s = stats_;
  s.faultModelCacheHits = faultCache_.hits();
  s.faultModelCacheMisses = faultCache_.misses();
  s.faultModelCacheSize = faultCache_.size();
  return s;
}

void AcceleratorService::pause() {
  std::lock_guard<std::mutex> lock(pauseMutex_);
  paused_ = true;
}

void AcceleratorService::resume() {
  std::lock_guard<std::mutex> lock(pauseMutex_);
  paused_ = false;
  pauseCv_.notify_all();
}

void AcceleratorService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(pauseMutex_);
    stopping_ = true;
    paused_ = false;  // a paused dispatcher must wake to drain
    pauseCv_.notify_all();
  }
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void AcceleratorService::dispatchLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pauseMutex_);
      pauseCv_.wait(lock, [this] { return !paused_ || stopping_; });
    }
    auto batch = queue_.popBatch(config_.maxBatch, config_.flushDeadline);
    if (batch.empty()) return;  // queue closed and drained
    executeBatch(batch);
  }
}

void AcceleratorService::executeBatch(
    std::vector<std::shared_ptr<Pending>>& batch) {
  const auto batchStart = Clock::now();

  // Stage 0: every request builds its per-replica lane fleets and
  // contributes its lane tasks to ONE merged wave.  Tasks are
  // self-contained (own backends/arenas, disjoint rows of the request's
  // own staging image), so wave composition cannot change any bit.
  std::vector<std::function<void()>> wave;
  for (auto& p : batch) {
    try {
      const Request& q = p->request;
      const OutputShape shape = outputShapeFor(q);
      const std::size_t replicas = std::max<std::size_t>(
          q.redundancy.replicas, 1);
      p->execs.reserve(replicas);
      p->replicaOut.reserve(replicas);
      if (q.app == apps::AppKind::Morphology) p->morphTmp.reserve(replicas);
      for (std::size_t r = 0; r < replicas; ++r) {
        p->execs.push_back(
            makeExecutor(config_, q,
                         reliability::replicaSeed(p->effectiveSeed, r),
                         faultCache_));
        // Staging init mirrors each app's whole-image form: smoothing and
        // morphology copy the source through (borders), the rest start
        // blank and are fully overwritten.
        if (q.app == apps::AppKind::Filters) {
          p->replicaOut.push_back(q.src.toImage());
        } else if (q.app == apps::AppKind::Morphology) {
          p->morphTmp.push_back(q.src.toImage());
          p->replicaOut.push_back(img::Image(shape.width, shape.height));
        } else {
          p->replicaOut.push_back(img::Image(shape.width, shape.height));
        }
        img::Image& stage0Out = q.app == apps::AppKind::Morphology
                                    ? p->morphTmp[r]
                                    : p->replicaOut[r];
        auto tasks = p->execs[r]->laneTasks(stage0Out.height(),
                                            stage0Kernel(q, stage0Out));
        for (auto& t : tasks) wave.push_back(std::move(t));
      }
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(ticketMutex_);
      p->error = e.what();
      p->done = true;
      ticketCv_.notify_all();
    }
  }

  try {
    pool_.run(std::move(wave));

    // Stage 1 (morphology riders only): seed the dilate staging from the
    // eroded intermediate, then run the second merged wave on the SAME
    // lane fleets — exactly openKernelTiled's two-pass schedule.
    std::vector<std::function<void()>> wave1;
    for (auto& p : batch) {
      if (p->done || p->request.app != apps::AppKind::Morphology) continue;
      for (std::size_t r = 0; r < p->execs.size(); ++r) {
        p->replicaOut[r].pixels() = p->morphTmp[r].pixels();
        auto tasks = p->execs[r]->laneTasks(
            p->replicaOut[r].height(),
            stage1Kernel(p->morphTmp[r], p->replicaOut[r]));
        for (auto& t : tasks) wave1.push_back(std::move(t));
      }
    }
    if (!wave1.empty()) pool_.run(std::move(wave1));
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(ticketMutex_);
    for (auto& p : batch) {
      if (p->done) continue;
      p->error = std::string("batch execution failed: ") + e.what();
      p->done = true;
    }
    ticketCv_.notify_all();
    return;
  }

  const auto batchEnd = Clock::now();
  const double execMicros = microsSince(batchStart, batchEnd);
  std::size_t served = 0;

  // Join: vote, write through the client span, bill the tenant.
  for (auto& p : batch) {
    if (p->done) continue;  // failed in setup
    const Request& q = p->request;
    RequestResult res;
    try {
      std::vector<std::vector<std::uint8_t>> outputs;
      outputs.reserve(p->replicaOut.size());
      for (auto& image : p->replicaOut) {
        outputs.push_back(std::move(image.pixels()));
      }
      const reliability::Vote vote =
          reliability::resolveVote(q.redundancy.vote, q.design);
      const std::vector<std::uint8_t> voted =
          outputs.size() == 1 ? std::move(outputs.front())
                              : reliability::voteImages(outputs, vote);
      q.out.assign(voted);

      for (auto& exec : p->execs) {
        res.events += exec->totalEvents();
        for (std::size_t i = 0; i < exec->lanes(); ++i) {
          res.opCount += exec->backend(i).opCount();
        }
      }
      res.queueMicros = microsSince(p->submitTime, batchStart);
      res.execMicros = execMicros;
      res.batchSize = batch.size();

      {
        std::lock_guard<std::mutex> lock(statsMutex_);
        TenantLedger& ledger = ledgers_[p->tenant];
        ledger.requests += 1;
        ledger.pixels += voted.size();
        ledger.replicasRun += p->execs.size();
        ledger.opCount += res.opCount;
        ledger.events += res.events;
      }
      ++served;
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(ticketMutex_);
      p->error = e.what();
      p->done = true;
      ticketCv_.notify_all();
      continue;
    }

    // Free the batch-local execution state before handing the result over.
    p->execs.clear();
    p->replicaOut.clear();
    p->morphTmp.clear();

    std::lock_guard<std::mutex> lock(ticketMutex_);
    p->result = res;
    p->done = true;
    ticketCv_.notify_all();
  }

  std::lock_guard<std::mutex> lock(statsMutex_);
  stats_.requestsServed += served;
  stats_.batches += 1;
  if (stats_.batchOccupancy.size() <= batch.size()) {
    stats_.batchOccupancy.resize(batch.size() + 1, 0);
  }
  stats_.batchOccupancy[batch.size()] += 1;
}

}  // namespace aimsc::service
