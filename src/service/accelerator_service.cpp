#include "service/accelerator_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/tile_executor.hpp"
#include "reliability/fault_rng.hpp"
#include "service/request_kernels.hpp"
#include "shard/coordinator.hpp"

namespace aimsc::service {

namespace {

using Clock = std::chrono::steady_clock;

double microsSince(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

const ServiceConfig& validated(const ServiceConfig& config) {
  if (config.lanes == 0 || config.rowsPerTile == 0 || config.maxBatch == 0 ||
      config.queueCapacity == 0) {
    throw std::invalid_argument("ServiceConfig: zero-sized knob");
  }
  return config;
}

/// Builds the shard fan-out when configured.  Runs in the member-init list
/// BEFORE the worker pool / dispatcher threads exist: fork()ing subprocess
/// workers from a multi-threaded parent would be unsafe.
std::unique_ptr<shard::ShardCoordinator> makeCoordinator(
    const ServiceConfig& config) {
  if (config.shards == 0) return nullptr;
  return std::make_unique<shard::ShardCoordinator>(
      shard::makeSupervisedFabric(config.shardTransport, config.shards,
                                  config.shardDeadlines, config.shardRetry,
                                  config.shardFaults),
      config.lanes, config.rowsPerTile);
}

}  // namespace

/// Everything one queued request carries through the pipeline.  The frame
/// views alias client memory; replica outputs are service-owned staging
/// that dies with the batch (the voted bytes leave through `request.out`).
struct AcceleratorService::Pending {
  TenantId tenant = 0;
  Request request;
  std::uint64_t effectiveSeed = 0;
  std::uint64_t id = 0;
  Clock::time_point submitTime;

  // Batch-local execution state (dispatcher only).
  std::vector<std::unique_ptr<core::TileExecutor>> execs;  // one per replica
  std::vector<img::Image> replicaOut;                      // one per replica
  std::vector<img::Image> morphTmp;  // morphology stage-0 intermediates

  // Completion (guarded by the service ticket mutex).
  bool done = false;
  std::string error;
  RequestResult result;
};

AcceleratorService::AcceleratorService(const ServiceConfig& config)
    : config_(validated(config)),
      queue_(config.queueCapacity),
      coordinator_(makeCoordinator(config_)),
      pool_(config.workerThreads),
      paused_(config.startPaused) {
  dispatcher_ = std::thread([this] { dispatchLoop(); });
}

AcceleratorService::~AcceleratorService() { shutdown(); }

std::uint64_t AcceleratorService::namespacedSeed(TenantId tenant,
                                                 std::uint64_t seed) const {
  std::uint64_t ns = 0;
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    const auto it = ledgers_.find(tenant);
    if (it != ledgers_.end()) ns = it->second.seedNamespace;
  }
  if (ns == 0) return seed;
  // Re-key through the mixer so tenant universes never collide with each
  // other or with the lane/replica seed strides.
  return reliability::mix64(ns ^ (seed + 0x9e3779b97f4a7c15ull));
}

std::shared_ptr<AcceleratorService::Pending> AcceleratorService::makePending(
    TenantId tenant, const Request& request) {
  auto p = std::make_shared<Pending>();
  p->tenant = tenant;
  p->request = request;
  p->effectiveSeed = namespacedSeed(tenant, request.seed);
  p->submitTime = Clock::now();
  return p;
}

Ticket AcceleratorService::registerTicket(
    const std::shared_ptr<Pending>& pending) {
  std::lock_guard<std::mutex> lock(ticketMutex_);
  const std::uint64_t id = nextTicket_++;
  pending->id = id;
  tickets_.emplace(id, pending);
  return Ticket{id};
}

Ticket AcceleratorService::submit(TenantId tenant, const Request& request) {
  validateRequest(request);
  auto pending = makePending(tenant, request);
  const Ticket ticket = registerTicket(pending);
  if (!queue_.push(pending)) {
    std::lock_guard<std::mutex> lock(ticketMutex_);
    tickets_.erase(ticket.id);
    throw std::runtime_error("AcceleratorService: stopped");
  }
  return ticket;
}

std::optional<Ticket> AcceleratorService::trySubmit(TenantId tenant,
                                                    const Request& request) {
  validateRequest(request);
  auto pending = makePending(tenant, request);
  const Ticket ticket = registerTicket(pending);
  if (!queue_.tryPush(pending)) {
    std::lock_guard<std::mutex> lock(ticketMutex_);
    tickets_.erase(ticket.id);
    return std::nullopt;
  }
  return ticket;
}

bool AcceleratorService::poll(const Ticket& ticket) const {
  std::lock_guard<std::mutex> lock(ticketMutex_);
  const auto it = tickets_.find(ticket.id);
  return it == tickets_.end() || it->second->done;
}

std::optional<RequestResult> AcceleratorService::waitFor(
    const Ticket& ticket, std::chrono::microseconds timeout) {
  std::shared_ptr<Pending> pending;
  {
    std::unique_lock<std::mutex> lock(ticketMutex_);
    const auto it = tickets_.find(ticket.id);
    if (it == tickets_.end()) {
      throw std::invalid_argument(
          "AcceleratorService: unknown or already-redeemed ticket");
    }
    pending = it->second;
    if (!ticketCv_.wait_for(lock, timeout, [&] { return pending->done; })) {
      return std::nullopt;  // still pending; ticket stays redeemable
    }
    tickets_.erase(ticket.id);
  }
  if (!pending->error.empty()) throw std::runtime_error(pending->error);
  return pending->result;
}

RequestResult AcceleratorService::wait(const Ticket& ticket) {
  std::shared_ptr<Pending> pending;
  {
    std::unique_lock<std::mutex> lock(ticketMutex_);
    const auto it = tickets_.find(ticket.id);
    if (it == tickets_.end()) {
      throw std::invalid_argument(
          "AcceleratorService: unknown or already-redeemed ticket");
    }
    pending = it->second;
    ticketCv_.wait(lock, [&] { return pending->done; });
    tickets_.erase(ticket.id);
  }
  if (!pending->error.empty()) throw std::runtime_error(pending->error);
  return pending->result;
}

TicketOutcome AcceleratorService::waitOutcome(const Ticket& ticket) {
  std::shared_ptr<Pending> pending;
  {
    std::unique_lock<std::mutex> lock(ticketMutex_);
    const auto it = tickets_.find(ticket.id);
    if (it == tickets_.end()) {
      throw std::invalid_argument(
          "AcceleratorService: unknown or already-redeemed ticket");
    }
    pending = it->second;
    ticketCv_.wait(lock, [&] { return pending->done; });
    tickets_.erase(ticket.id);
  }
  TicketOutcome outcome;
  if (!pending->error.empty()) {
    outcome.status = TicketStatus::Failed;
    outcome.error = pending->error;
    return outcome;
  }
  outcome.result = pending->result;
  outcome.status = pending->result.degraded ? TicketStatus::Degraded
                                            : TicketStatus::Ok;
  return outcome;
}

std::optional<TicketOutcome> AcceleratorService::waitOutcomeFor(
    const Ticket& ticket, std::chrono::microseconds timeout) {
  std::shared_ptr<Pending> pending;
  {
    std::unique_lock<std::mutex> lock(ticketMutex_);
    const auto it = tickets_.find(ticket.id);
    if (it == tickets_.end()) {
      throw std::invalid_argument(
          "AcceleratorService: unknown or already-redeemed ticket");
    }
    pending = it->second;
    if (!ticketCv_.wait_for(lock, timeout, [&] { return pending->done; })) {
      return std::nullopt;  // still pending; ticket stays redeemable
    }
    tickets_.erase(ticket.id);
  }
  TicketOutcome outcome;
  if (!pending->error.empty()) {
    outcome.status = TicketStatus::Failed;
    outcome.error = pending->error;
    return outcome;
  }
  outcome.result = pending->result;
  outcome.status = pending->result.degraded ? TicketStatus::Degraded
                                            : TicketStatus::Ok;
  return outcome;
}

RequestResult AcceleratorService::run(TenantId tenant, const Request& request) {
  return wait(submit(tenant, request));
}

void AcceleratorService::setTenantSeedNamespace(TenantId tenant,
                                                std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(statsMutex_);
  ledgers_[tenant].seedNamespace = ns;
}

TenantLedger AcceleratorService::tenantLedger(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  const auto it = ledgers_.find(tenant);
  return it == ledgers_.end() ? TenantLedger{} : it->second;
}

ServiceStats AcceleratorService::stats() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  ServiceStats s = stats_;
  s.faultModelCacheHits = faultCache_.hits();
  s.faultModelCacheMisses = faultCache_.misses();
  s.faultModelCacheSize = faultCache_.size();
  return s;
}

void AcceleratorService::pause() {
  std::lock_guard<std::mutex> lock(pauseMutex_);
  paused_ = true;
}

void AcceleratorService::resume() {
  std::lock_guard<std::mutex> lock(pauseMutex_);
  paused_ = false;
  pauseCv_.notify_all();
}

void AcceleratorService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(pauseMutex_);
    stopping_ = true;
    paused_ = false;  // a paused dispatcher must wake to drain
    pauseCv_.notify_all();
  }
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void AcceleratorService::dispatchLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pauseMutex_);
      pauseCv_.wait(lock, [this] { return !paused_ || stopping_; });
    }
    auto batch = queue_.popBatch(config_.maxBatch, config_.flushDeadline);
    if (batch.empty()) return;  // queue closed and drained
    executeBatch(batch);
  }
}

void AcceleratorService::executeBatchSharded(
    std::vector<std::shared_ptr<Pending>>& batch) {
  const auto batchStart = Clock::now();
  std::size_t served = 0;
  // Publish the fabric's cumulative counters.  The supervisor is
  // dispatcher-thread-only, so copying under statsMutex_ is the one place
  // they become visible to concurrent stats() readers; it runs BEFORE each
  // ticket resolves so a client that waits on a ticket and then reads
  // stats() sees the recovery work its own request caused.
  const auto snapshotFabricLocked = [this]() {
    const shard::FabricStats& fs = coordinator_->fabric().stats();
    stats_.shardRetries = fs.retries;
    stats_.shardRespawns = fs.respawns;
    stats_.shardTimeouts = fs.timeouts;
    stats_.shardGarbageReplies = fs.garbageReplies;
    stats_.shardFaultsInjected = fs.faultsInjected;
    stats_.deadShards = fs.deadShards;
    stats_.reassignedDispatches = coordinator_->reassignedDispatches();
  };
  for (auto& p : batch) {
    const Request& q = p->request;
    RequestResult res;
    try {
      std::uint64_t ns = 0;
      {
        std::lock_guard<std::mutex> lock(statsMutex_);
        const auto it = ledgers_.find(p->tenant);
        if (it != ledgers_.end()) ns = it->second.seedNamespace;
      }
      res = coordinator_->runReplicated(p->tenant, q, ns, p->effectiveSeed);
      res.queueMicros = microsSince(p->submitTime, batchStart);
      res.execMicros = microsSince(batchStart, Clock::now());
      res.batchSize = batch.size();

      const OutputShape shape = outputShapeFor(q);
      std::lock_guard<std::mutex> lock(statsMutex_);
      TenantLedger& ledger = ledgers_[p->tenant];
      ledger.requests += 1;
      ledger.pixels += shape.width * shape.height;
      ledger.replicasRun += std::max<std::size_t>(q.redundancy.replicas, 1);
      ledger.opCount += res.opCount;
      ledger.events += res.events;
      if (res.degraded) ++stats_.degradedRequests;
      snapshotFabricLocked();
      ++served;
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> slock(statsMutex_);
        snapshotFabricLocked();
      }
      std::lock_guard<std::mutex> lock(ticketMutex_);
      p->error = e.what();
      p->done = true;
      ticketCv_.notify_all();
      continue;
    }
    std::lock_guard<std::mutex> lock(ticketMutex_);
    p->result = res;
    p->done = true;
    ticketCv_.notify_all();
  }

  std::lock_guard<std::mutex> lock(statsMutex_);
  stats_.requestsServed += served;
  stats_.batches += 1;
  if (stats_.batchOccupancy.size() <= batch.size()) {
    stats_.batchOccupancy.resize(batch.size() + 1, 0);
  }
  stats_.batchOccupancy[batch.size()] += 1;
  snapshotFabricLocked();
}

void AcceleratorService::executeBatch(
    std::vector<std::shared_ptr<Pending>>& batch) {
  if (coordinator_ != nullptr) {
    executeBatchSharded(batch);
    return;
  }
  const auto batchStart = Clock::now();

  // Stage 0: every request builds its per-replica lane fleets and
  // contributes its lane tasks to ONE merged wave.  Tasks are
  // self-contained (own backends/arenas, disjoint rows of the request's
  // own staging image), so wave composition cannot change any bit.
  std::vector<std::function<void()>> wave;
  for (auto& p : batch) {
    try {
      const Request& q = p->request;
      const OutputShape shape = outputShapeFor(q);
      const std::size_t replicas = std::max<std::size_t>(
          q.redundancy.replicas, 1);
      p->execs.reserve(replicas);
      p->replicaOut.reserve(replicas);
      if (q.app == apps::AppKind::Morphology) p->morphTmp.reserve(replicas);
      const ExecShape es{config_.lanes, config_.rowsPerTile};
      for (std::size_t r = 0; r < replicas; ++r) {
        p->execs.push_back(makeRequestExecutor(
            es, q, reliability::replicaSeed(p->effectiveSeed, r),
            faultCache_));
        // Staging init mirrors each app's whole-image form (shared with the
        // shard worker — see request_kernels.hpp): morphology's source copy
        // is the erode intermediate, its output starts blank.
        if (q.app == apps::AppKind::Morphology) {
          p->morphTmp.push_back(makeStage0Staging(q, shape));
          p->replicaOut.push_back(img::Image(shape.width, shape.height));
        } else {
          p->replicaOut.push_back(makeStage0Staging(q, shape));
        }
        img::Image& stage0Out = q.app == apps::AppKind::Morphology
                                    ? p->morphTmp[r]
                                    : p->replicaOut[r];
        auto tasks = p->execs[r]->laneTasks(stage0Out.height(),
                                            stage0Kernel(q, stage0Out));
        for (auto& t : tasks) wave.push_back(std::move(t));
      }
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(ticketMutex_);
      p->error = e.what();
      p->done = true;
      ticketCv_.notify_all();
    }
  }

  try {
    pool_.run(std::move(wave));

    // Stage 1 (morphology riders only): seed the dilate staging from the
    // eroded intermediate, then run the second merged wave on the SAME
    // lane fleets — exactly openKernelTiled's two-pass schedule.
    std::vector<std::function<void()>> wave1;
    for (auto& p : batch) {
      if (p->done || p->request.app != apps::AppKind::Morphology) continue;
      for (std::size_t r = 0; r < p->execs.size(); ++r) {
        p->replicaOut[r].pixels() = p->morphTmp[r].pixels();
        auto tasks = p->execs[r]->laneTasks(
            p->replicaOut[r].height(),
            stage1Kernel(p->morphTmp[r], p->replicaOut[r]));
        for (auto& t : tasks) wave1.push_back(std::move(t));
      }
    }
    if (!wave1.empty()) pool_.run(std::move(wave1));
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(ticketMutex_);
    for (auto& p : batch) {
      if (p->done) continue;
      p->error = std::string("batch execution failed: ") + e.what();
      p->done = true;
    }
    ticketCv_.notify_all();
    return;
  }

  const auto batchEnd = Clock::now();
  const double execMicros = microsSince(batchStart, batchEnd);
  std::size_t served = 0;

  // Join: vote, write through the client span, bill the tenant.
  for (auto& p : batch) {
    if (p->done) continue;  // failed in setup
    const Request& q = p->request;
    RequestResult res;
    try {
      std::vector<std::vector<std::uint8_t>> outputs;
      outputs.reserve(p->replicaOut.size());
      for (auto& image : p->replicaOut) {
        outputs.push_back(std::move(image.pixels()));
      }
      const reliability::Vote vote =
          reliability::resolveVote(q.redundancy.vote, q.design);
      const std::vector<std::uint8_t> voted =
          outputs.size() == 1 ? std::move(outputs.front())
                              : reliability::voteImages(outputs, vote);
      q.out.assign(voted);

      for (auto& exec : p->execs) {
        res.events += exec->totalEvents();
        for (std::size_t i = 0; i < exec->lanes(); ++i) {
          res.opCount += exec->backend(i).opCount();
        }
      }
      res.queueMicros = microsSince(p->submitTime, batchStart);
      res.execMicros = execMicros;
      res.batchSize = batch.size();

      {
        std::lock_guard<std::mutex> lock(statsMutex_);
        TenantLedger& ledger = ledgers_[p->tenant];
        ledger.requests += 1;
        ledger.pixels += voted.size();
        ledger.replicasRun += p->execs.size();
        ledger.opCount += res.opCount;
        ledger.events += res.events;
      }
      ++served;
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(ticketMutex_);
      p->error = e.what();
      p->done = true;
      ticketCv_.notify_all();
      continue;
    }

    // Free the batch-local execution state before handing the result over.
    p->execs.clear();
    p->replicaOut.clear();
    p->morphTmp.clear();

    std::lock_guard<std::mutex> lock(ticketMutex_);
    p->result = res;
    p->done = true;
    ticketCv_.notify_all();
  }

  std::lock_guard<std::mutex> lock(statsMutex_);
  stats_.requestsServed += served;
  stats_.batches += 1;
  if (stats_.batchOccupancy.size() <= batch.size()) {
    stats_.batchOccupancy.resize(batch.size() + 1, 0);
  }
  stats_.batchOccupancy[batch.size()] += 1;
}

}  // namespace aimsc::service
