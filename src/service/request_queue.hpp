/// \file request_queue.hpp
/// \brief Bounded MPMC queue with blocking backpressure and deadline-batched
///        draining — the admission layer in front of the tile engine.
///
/// Producers are client threads (`submit` blocks while the queue is full —
/// that IS the backpressure contract; `trySubmit` refuses instead).  The
/// consumer is the dispatcher thread, which drains in *batches*:
/// `popBatch(max, flushDeadline)` blocks for the first item, then keeps
/// collecting until the batch is full or the deadline since the first item
/// expires — the flush-on-deadline policy that trades a bounded latency
/// increment for cross-request coalescing.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace aimsc::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full (backpressure); returns false iff the queue closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    notFull_.wait(lock,
                  [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    notEmpty_.notify_one();
    return true;
  }

  /// Non-blocking admission; false when full or closed.
  bool tryPush(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    notEmpty_.notify_one();
    return true;
  }

  /// Blocks for the first item, then collects up to \p max items, waiting
  /// at most \p flushDeadline past the first pop for stragglers.  Empty
  /// result means closed-and-drained.
  std::vector<T> popBatch(std::size_t max,
                          std::chrono::microseconds flushDeadline) {
    std::vector<T> batch;
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return batch;  // closed and drained

    const auto deadline = std::chrono::steady_clock::now() + flushDeadline;
    for (;;) {
      while (!items_.empty() && batch.size() < max) {
        batch.push_back(std::move(items_.front()));
        items_.pop_front();
        notFull_.notify_one();
      }
      if (batch.size() >= max || closed_) break;
      if (notEmpty_.wait_until(lock, deadline, [this] {
            return closed_ || !items_.empty();
          })) {
        continue;  // more arrived (or closed) before the deadline
      }
      break;  // deadline expired: flush what we have
    }
    return batch;
  }

  /// Wakes every producer/consumer; push() fails from now on, popBatch()
  /// keeps draining what is already queued.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace aimsc::service
