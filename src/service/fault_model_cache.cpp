#include "service/fault_model_cache.hpp"

namespace aimsc::service {

FaultModelCache::Key FaultModelCache::keyFor(const reram::DeviceParams& device,
                                             std::uint64_t seed,
                                             std::size_t samples) {
  return Key{device.rLrsOhm, device.rHrsOhm,  device.sigmaLrs,
             device.sigmaHrs, device.vRead,   device.enduranceCycles,
             seed,            samples};
}

std::shared_ptr<const reram::FaultModel> FaultModelCache::get(
    const reram::DeviceParams& device, std::uint64_t seed,
    std::size_t samples) {
  const Key key = keyFor(device, seed, samples);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(key);
  if (it != models_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  // Constructing is cheap — the Monte-Carlo happens lazily per queried
  // pattern inside the model, memoized there for the model's lifetime.
  auto model = std::make_shared<const reram::FaultModel>(device, seed, samples);
  models_.emplace(key, model);
  return model;
}

core::FaultModelProvider FaultModelCache::provider() {
  return [this](const reram::DeviceParams& device, std::uint64_t seed,
                std::size_t samples) { return get(device, seed, samples); };
}

std::uint64_t FaultModelCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t FaultModelCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t FaultModelCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return models_.size();
}

}  // namespace aimsc::service
