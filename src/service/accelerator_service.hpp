/// \file accelerator_service.hpp
/// \brief The always-on accelerator daemon: a persistent in-process service
///        that owns the worker pool and serves concurrent tenants through a
///        bounded queue with cross-request batching.
///
/// Serving model (docs/SERVICE.md):
///
///   clients --submit/trySubmit--> [BoundedQueue] --popBatch--> dispatcher
///        <--poll/wait-- tickets <--join/vote/bill-- [one pool wave/batch]
///
/// * **Queue**: bounded MPMC; `submit` blocks while full (backpressure),
///   `trySubmit` refuses.  The dispatcher drains up to `maxBatch` requests,
///   waiting at most `flushDeadline` past the first for stragglers.
/// * **Batching**: each request builds its own independently-seeded lane
///   fleet (a `TileExecutor` per replica), but the lane *tasks* of every
///   request in the batch are merged into ONE worker-pool wave, so a
///   2-request batch fills the pool twice as densely as two solo runs.
/// * **Determinism**: a lane task is self-contained (own backends, own
///   arenas, disjoint output rows in its own request's buffer), so which
///   pool thread runs it — and which strangers share the wave — cannot
///   change any bit.  Output bytes are a pure function of (request fields,
///   tenant seed namespace).  `tests/test_service.cpp` hammers this.
/// * **Accounting**: at join the request's replica outputs are voted
///   (reliability::voteImages), written into the client's `ImageSpan`, and
///   the replica-summed event/op ledgers are billed to the tenant.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "core/thread_pool.hpp"
#include "service/accounting.hpp"
#include "service/fault_model_cache.hpp"
#include "service/request.hpp"
#include "service/request_queue.hpp"
#include "service/ticket.hpp"
#include "shard/fault_plan.hpp"
#include "shard/supervisor.hpp"
#include "shard/transport.hpp"

namespace aimsc::shard {
class ShardCoordinator;
}

namespace aimsc::service {

struct ServiceConfig {
  /// Admission-queue capacity; submit() blocks when this many requests are
  /// already queued (backpressure).
  std::size_t queueCapacity = 64;

  /// Worker threads executing the merged lane waves; 0 = the dispatcher
  /// thread runs every lane inline (still fully asynchronous to clients).
  std::size_t workerThreads = 0;

  /// Lane fleet size per request replica, and the tile height.  These are
  /// part of each request's bit contract (same role as ParallelConfig in
  /// apps::runApp), so they are service-wide, not per request.
  std::size_t lanes = 4;
  std::size_t rowsPerTile = 4;

  /// Cross-request batching: coalesce up to maxBatch requests per wave,
  /// flushing a partial batch flushDeadline after its first request.
  std::size_t maxBatch = 8;
  std::chrono::microseconds flushDeadline{200};

  /// Start with the dispatcher paused (tests: fill the queue, observe
  /// backpressure/occupancy deterministically, then resume()).
  bool startPaused = false;

  /// Shard fan-out: 0 = in-process execution (the PR-7 daemon path);
  /// N > 0 builds N shard workers at construction and executes every
  /// request through the shard coordinator (wire codec + transport;
  /// docs/SHARDING.md).  Output bytes are identical either way — sharding
  /// is a deployment knob, not part of the bit contract.  Subprocess
  /// workers are fork()ed in the constructor BEFORE any service thread
  /// starts (fork-safety).
  std::size_t shards = 0;
  shard::ShardTransportKind shardTransport =
      shard::ShardTransportKind::Subprocess;

  /// Fabric resilience knobs (shards > 0 only): per-operation channel
  /// deadlines, the retry/backoff/respawn budgets, and the chaos-injection
  /// plan (all-zero rates = injection off; chaos tests and bench only).
  shard::ChannelDeadlines shardDeadlines{};
  shard::RetryPolicy shardRetry{};
  shard::ShardFaultPlan shardFaults{};
};

class AcceleratorService {
 public:
  explicit AcceleratorService(const ServiceConfig& config = ServiceConfig{});
  ~AcceleratorService();

  AcceleratorService(const AcceleratorService&) = delete;
  AcceleratorService& operator=(const AcceleratorService&) = delete;

  /// Validates and enqueues; blocks while the queue is full.  The frame
  /// views and the output span must stay valid until the ticket resolves.
  /// Throws std::invalid_argument on a malformed request,
  /// std::runtime_error after shutdown().
  Ticket submit(TenantId tenant, const Request& request);

  /// Non-blocking admission: nullopt when the queue is full (or stopped).
  std::optional<Ticket> trySubmit(TenantId tenant, const Request& request);

  /// True once the ticket's request has resolved (result ready or failed).
  bool poll(const Ticket& ticket) const;

  /// Blocks until resolved, then redeems the ticket (single use).  Throws
  /// std::runtime_error if the request failed in execution,
  /// std::invalid_argument for an unknown/already-redeemed ticket.
  RequestResult wait(const Ticket& ticket);

  /// wait() with a deadline: nullopt when the ticket is still unresolved
  /// after \p timeout (the ticket stays live and redeemable later); the
  /// same exceptions as wait() otherwise.
  std::optional<RequestResult> waitFor(const Ticket& ticket,
                                       std::chrono::microseconds timeout);

  /// Typed redemption: NEVER throws on execution failure — a Failed
  /// outcome carries the error string instead, and Degraded marks a
  /// request that recovered onto stand-in shards (bytes identical either
  /// way).  Still throws std::invalid_argument for an unknown or
  /// already-redeemed ticket.
  TicketOutcome waitOutcome(const Ticket& ticket);

  /// waitOutcome() with a deadline: nullopt while unresolved (the ticket
  /// stays live and redeemable later).
  std::optional<TicketOutcome> waitOutcomeFor(
      const Ticket& ticket, std::chrono::microseconds timeout);

  /// Blocking convenience wrapper: submit + wait.
  RequestResult run(TenantId tenant, const Request& request);

  /// Gives \p tenant its own seed universe (see TenantLedger::seedNamespace;
  /// affects only requests submitted afterwards).
  void setTenantSeedNamespace(TenantId tenant, std::uint64_t ns);

  /// Snapshot of the tenant's bill (default ledger for unknown tenants).
  TenantLedger tenantLedger(TenantId tenant) const;

  /// Snapshot of service-wide batching statistics.
  ServiceStats stats() const;

  /// Pause/resume the dispatcher (admission stays open — the queue fills
  /// and backpressure becomes observable).
  void pause();
  void resume();

  /// Stops admission, drains every queued request, joins the dispatcher.
  /// Idempotent; the destructor calls it.
  void shutdown();

  std::size_t queueDepth() const { return queue_.size(); }
  const ServiceConfig& config() const { return config_; }

  /// The shard fan-out, nullptr when `config.shards == 0`.  Exposed for
  /// tests and ops tooling (fault injection, shard introspection).
  shard::ShardCoordinator* shardCoordinator() { return coordinator_.get(); }

 private:
  struct Pending;

  std::uint64_t namespacedSeed(TenantId tenant, std::uint64_t seed) const;
  void dispatchLoop();
  void executeBatch(std::vector<std::shared_ptr<Pending>>& batch);
  void executeBatchSharded(std::vector<std::shared_ptr<Pending>>& batch);
  std::shared_ptr<Pending> makePending(TenantId tenant, const Request& request);
  Ticket registerTicket(const std::shared_ptr<Pending>& pending);

  ServiceConfig config_;
  BoundedQueue<std::shared_ptr<Pending>> queue_;

  /// Shard fan-out (config.shards > 0).  Declared BEFORE pool_ so
  /// subprocess workers fork while the service is still single-threaded.
  std::unique_ptr<shard::ShardCoordinator> coordinator_;

  core::ThreadPool pool_;

  /// Warm misdecision tables shared across requests (bit-preserving memo;
  /// outlives every per-request executor — they are batch-scoped).
  FaultModelCache faultCache_;

  mutable std::mutex ticketMutex_;
  std::condition_variable ticketCv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> tickets_;
  std::uint64_t nextTicket_ = 1;

  mutable std::mutex statsMutex_;
  std::unordered_map<TenantId, TenantLedger> ledgers_;
  ServiceStats stats_;

  std::mutex pauseMutex_;
  std::condition_variable pauseCv_;
  bool paused_ = false;
  bool stopping_ = false;

  std::thread dispatcher_;
};

}  // namespace aimsc::service
