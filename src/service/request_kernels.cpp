#include "service/request_kernels.hpp"

#include <stdexcept>

#include "apps/bilinear.hpp"
#include "apps/compositing.hpp"
#include "apps/filters.hpp"
#include "apps/matting.hpp"
#include "apps/morphology.hpp"

namespace aimsc::service {

std::unique_ptr<core::TileExecutor> makeRequestExecutor(
    const ExecShape& shape, const Request& q, std::uint64_t seed,
    FaultModelCache& faultCache) {
  if (q.design == core::DesignKind::ReramSc) {
    core::TileExecutorConfig tc;
    tc.lanes = shape.lanes;
    tc.threads = 0;  // the caller's pool runs the wave, not the executor
    tc.rowsPerTile = shape.rowsPerTile;
    tc.mat.streamLength = q.streamLength;
    tc.mat.deviceVariability = q.faults.deviceVariability;
    if (q.faults.deviceVariability) tc.mat.device = q.faults.device;
    tc.mat.faultModelSamples = q.faults.faultModelSamples;
    tc.mat.seed = seed;
    tc.mat.faultModelProvider = faultCache.provider();
    tc.faults = q.faults;
    return std::make_unique<core::TileExecutor>(tc);
  }
  core::BackendFactoryConfig bc;
  bc.streamLength = q.streamLength;
  bc.seed = seed;
  bc.faults = q.faults;
  core::ParallelConfig par;
  par.lanes = shape.lanes;
  par.threads = 0;
  par.rowsPerTile = shape.rowsPerTile;
  return std::make_unique<core::TileExecutor>(
      core::makeBackendLanes(q.design, bc, shape.lanes), par);
}

img::Image makeStage0Staging(const Request& q, const OutputShape& shape) {
  // Staging init mirrors each app's whole-image form: smoothing and
  // morphology copy the source through (borders), the rest start blank and
  // are fully overwritten.
  if (q.app == apps::AppKind::Filters || q.app == apps::AppKind::Morphology) {
    return q.src.toImage();
  }
  return img::Image(shape.width, shape.height);
}

core::TileExecutor::ArenaTileKernel stage0Kernel(const Request& q,
                                                 img::Image& out) {
  const img::ImageSpan dst(out);
  switch (q.app) {
    case apps::AppKind::Compositing: {
      const apps::CompositingFrames frames(q.src, q.aux1, q.aux2);
      return [frames, dst](core::ScBackend& b, core::StreamArena& arena,
                           std::size_t r0, std::size_t r1) {
        apps::compositeKernelRows(frames, b, arena, dst, r0, r1);
      };
    }
    case apps::AppKind::Matting: {
      const apps::MattingFrames frames(q.src, q.aux1, q.aux2);
      return [frames, dst](core::ScBackend& b, core::StreamArena& arena,
                           std::size_t r0, std::size_t r1) {
        apps::mattingKernelRows(frames, b, arena, dst, r0, r1);
      };
    }
    case apps::AppKind::Bilinear: {
      const img::ImageView src = q.src;
      const std::size_t factor = q.upscaleFactor;
      return [src, factor, dst](core::ScBackend& b, core::StreamArena& arena,
                                std::size_t r0, std::size_t r1) {
        apps::upscaleKernelRows(src, factor, b, arena, dst, r0, r1);
      };
    }
    case apps::AppKind::Filters: {
      const img::ImageView src = q.src;
      return [src, dst](core::ScBackend& b, core::StreamArena& arena,
                        std::size_t r0, std::size_t r1) {
        apps::smoothKernelRows(src, b, arena, dst, r0, r1);
      };
    }
    case apps::AppKind::Gamma: {
      const img::ImageView src = q.src;
      const double gamma = q.gamma;
      return [src, gamma, dst](core::ScBackend& b, core::StreamArena& arena,
                               std::size_t r0, std::size_t r1) {
        apps::gammaKernelRows(src, gamma, b, arena, dst, r0, r1);
      };
    }
    case apps::AppKind::Morphology: {
      const img::ImageView src = q.src;
      return [src, dst](core::ScBackend& b, core::StreamArena& arena,
                        std::size_t r0, std::size_t r1) {
        apps::erodeKernelRows(src, b, arena, dst, r0, r1);
      };
    }
  }
  throw std::invalid_argument("service: bad app");
}

core::TileExecutor::ArenaTileKernel stage1Kernel(const img::Image& tmp,
                                                 img::Image& out) {
  const img::ImageView src(tmp);
  const img::ImageSpan dst(out);
  return [src, dst](core::ScBackend& b, core::StreamArena& arena,
                    std::size_t r0, std::size_t r1) {
    apps::dilateKernelRows(src, b, arena, dst, r0, r1);
  };
}

}  // namespace aimsc::service
