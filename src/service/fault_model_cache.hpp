/// \file fault_model_cache.hpp
/// \brief Memoized misdecision tables — the daemon's warm-state win.
///
/// A per-mat `reram::FaultModel` is a pure function of its constructor
/// triple (device params, seed, samples): every table entry is Monte-Carlo
/// sampled from a seed derived deterministically from that triple and the
/// query pattern.  One-shot `apps::runApp` therefore re-pays the full
/// Monte-Carlo campaign on EVERY call with a device-variability FaultPlan
/// (~75x the fault-free kernel cost at 64x64, see BENCH_service.json); a
/// persistent service can keep the tables.
///
/// The cache memoizes whole models by their constructor triple and hands
/// them out through the `core::FaultModelProvider` hook.  Because a hit
/// returns a model built from exactly the arguments the mat would have used
/// itself, cached runs are bit-identical to cold runs — the request seed
/// still namespaces the tables, tenants with different seeds or device
/// corners get distinct entries, and `FaultModel`'s internal memo table is
/// mutex-guarded so concurrent lanes may query one model safely.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "core/accelerator.hpp"
#include "reram/device.hpp"
#include "reram/fault_model.hpp"

namespace aimsc::service {

class FaultModelCache {
 public:
  /// The memoized equivalent of `new FaultModel(device, seed, samples)`.
  std::shared_ptr<const reram::FaultModel> get(
      const reram::DeviceParams& device, std::uint64_t seed,
      std::size_t samples);

  /// Provider bound to this cache (for AcceleratorConfig::faultModelProvider).
  /// The cache must outlive every executor built with the provider.
  core::FaultModelProvider provider();

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

 private:
  // Every field that changes the Monte-Carlo outcome is part of the key.
  using Key = std::tuple<double, double, double, double, double,
                         std::uint64_t, std::uint64_t, std::size_t>;
  static Key keyFor(const reram::DeviceParams& device, std::uint64_t seed,
                    std::size_t samples);

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const reram::FaultModel>> models_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace aimsc::service
