/// \file accounting.hpp
/// \brief Per-tenant ledgers and service-wide batching statistics.
///
/// Every resolved request bills its tenant: request/pixel counts, the
/// backend op count and the merged ReRAM event ledger summed over all its
/// replicas (the same cost surface apps::RunResult reports, so redundancy
/// shows up as an R-fold cost increase on the tenant's bill).  Ledgers are
/// updated at join time under one stats mutex — never on the lane hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "reram/events.hpp"

namespace aimsc::service {

struct TenantLedger {
  std::uint64_t requests = 0;     ///< requests resolved
  std::uint64_t pixels = 0;       ///< output pixels produced
  std::uint64_t replicasRun = 0;  ///< replica executions (>= requests)
  std::uint64_t opCount = 0;      ///< backend ops, summed over replicas
  reram::EventCounts events;      ///< merged ReRAM event ledger

  /// Seed namespace: 0 = identity (request seeds used as-is); any other
  /// value re-keys every request seed through a mix, so two tenants
  /// submitting the same request get independent substrate randomness.
  std::uint64_t seedNamespace = 0;
};

struct ServiceStats {
  std::uint64_t requestsServed = 0;
  std::uint64_t batches = 0;

  /// batchOccupancy[k] = number of batches that coalesced exactly k
  /// requests (index 0 unused).
  std::vector<std::uint64_t> batchOccupancy;

  /// Fault-model cache counters (service::FaultModelCache): hits are
  /// requests that skipped the per-mat Monte-Carlo campaign entirely.
  std::uint64_t faultModelCacheHits = 0;
  std::uint64_t faultModelCacheMisses = 0;
  std::size_t faultModelCacheSize = 0;

  /// Shard-fabric resilience counters (docs/SHARDING.md "Failure semantics
  /// & recovery"; all zero on the in-process path).  The shard* counters
  /// snapshot the supervisor's FabricStats; degradedRequests counts
  /// requests that completed on stand-in shards (bytes still identical),
  /// reassignedDispatches the lane slices those stand-ins served.
  std::uint64_t shardRetries = 0;
  std::uint64_t shardRespawns = 0;
  std::uint64_t shardTimeouts = 0;
  std::uint64_t shardGarbageReplies = 0;
  std::uint64_t shardFaultsInjected = 0;
  std::uint64_t deadShards = 0;
  std::uint64_t degradedRequests = 0;
  std::uint64_t reassignedDispatches = 0;

  double meanOccupancy() const {
    std::uint64_t total = 0, weighted = 0;
    for (std::size_t k = 1; k < batchOccupancy.size(); ++k) {
      total += batchOccupancy[k];
      weighted += k * batchOccupancy[k];
    }
    return total == 0 ? 0.0
                      : static_cast<double>(weighted) /
                            static_cast<double>(total);
  }
};

}  // namespace aimsc::service
