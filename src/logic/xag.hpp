/// \file xag.hpp
/// \brief XOR-AND-Inverter graph (XAG) — the logic representation the paper
///        uses for manipulating/optimizing the in-memory comparison network
///        (Sec. III-A, [30]).
///
/// Nodes are AND/XOR gates over complementable literals; inversion is free
/// (a complemented edge), matching scouting logic where NAND/NOR/XNOR cost
/// the same sensing step as AND/OR/XOR.  The builder performs structural
/// hashing and constant folding, which is the "optimization using logic
/// synthesis tools" step: folding the constant operand bits of the
/// greater-than network shrinks it from ~5n to ~2n gates.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sc/bitstream.hpp"

namespace aimsc::logic {

/// Complementable edge: (node index << 1) | complement bit.
using Literal = std::uint32_t;

constexpr Literal makeLiteral(std::uint32_t node, bool complemented) {
  return (node << 1) | (complemented ? 1u : 0u);
}
constexpr std::uint32_t literalNode(Literal l) { return l >> 1; }
constexpr bool literalComplemented(Literal l) { return (l & 1u) != 0; }
constexpr Literal complementLiteral(Literal l) { return l ^ 1u; }

class Xag {
 public:
  enum class NodeType { Constant, Input, And, Xor };

  struct Node {
    NodeType type;
    Literal a = 0;
    Literal b = 0;
  };

  Xag();

  /// Constant-false literal (complement for true).
  Literal constantFalse() const { return makeLiteral(0, false); }
  Literal constantTrue() const { return makeLiteral(0, true); }

  /// Adds a primary input.
  Literal addInput(std::string name);

  /// Adds an AND gate with constant folding and structural hashing.
  Literal addAnd(Literal a, Literal b);

  /// Adds an XOR gate with constant folding and structural hashing.
  Literal addXor(Literal a, Literal b);

  /// OR through De Morgan (free complements).
  Literal addOr(Literal a, Literal b) {
    return complementLiteral(addAnd(complementLiteral(a), complementLiteral(b)));
  }

  void addOutput(Literal l) { outputs_.push_back(l); }

  std::size_t numInputs() const { return inputs_.size(); }
  std::size_t numGates() const { return andCount_ + xorCount_; }
  std::size_t numAnds() const { return andCount_; }
  std::size_t numXors() const { return xorCount_; }
  const std::vector<Literal>& outputs() const { return outputs_; }
  const std::string& inputName(std::size_t i) const { return inputNames_[i]; }

  /// Longest input-to-output gate path (scouting-logic critical depth).
  std::size_t depth() const;

  /// Gates reachable from the outputs (dead logic excluded) — the count a
  /// synthesis tool would report and the one the SL schedule executes.
  std::size_t numGatesInCone() const;

  /// Scalar evaluation: inputs[i] is the value of the i-th added input.
  std::vector<bool> evaluate(const std::vector<bool>& inputs) const;

  /// Bulk simulation: one Bitstream per input, all equal length; returns
  /// one stream per output (this is exactly what bulk-bitwise SL executes).
  std::vector<sc::Bitstream> simulate(
      const std::vector<sc::Bitstream>& inputs) const;

 private:
  Literal lookupOrInsert(NodeType t, Literal a, Literal b);

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> inputs_;  ///< node ids of inputs, in add order
  std::vector<std::string> inputNames_;
  std::vector<Literal> outputs_;
  std::size_t andCount_ = 0;
  std::size_t xorCount_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> structural_;
};

}  // namespace aimsc::logic
