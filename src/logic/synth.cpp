#include "logic/synth.hpp"

#include <stdexcept>
#include <string>

namespace aimsc::logic {

namespace {

/// Core construction shared by the generic and constant-folded builders:
/// A literal vector (constants or inputs) compared against R inputs.
GreaterThanNetwork buildCore(int nbits, const std::uint32_t* aValue) {
  if (nbits < 1 || nbits > 31) {
    throw std::invalid_argument("buildGreaterThan: nbits out of range");
  }
  GreaterThanNetwork net;
  std::vector<Literal> aLits;
  for (int i = nbits - 1; i >= 0; --i) {  // MSB first
    if (aValue == nullptr) {
      const Literal l = net.xag.addInput("a" + std::to_string(i));
      net.aInputs.push_back(l);
      aLits.push_back(l);
    } else {
      const bool bit = ((*aValue) >> i) & 1u;
      aLits.push_back(bit ? net.xag.constantTrue() : net.xag.constantFalse());
    }
  }
  for (int i = nbits - 1; i >= 0; --i) {
    net.rInputs.push_back(net.xag.addInput("r" + std::to_string(i)));
  }

  Xag& g = net.xag;
  Literal flag = g.constantTrue();   // "all higher bits equal so far"
  Literal out = g.constantFalse();   // greater-than detected
  for (int i = 0; i < nbits; ++i) {
    const Literal a = aLits[static_cast<std::size_t>(i)];
    const Literal r = net.rInputs[static_cast<std::size_t>(i)];
    const Literal neq = g.addXor(a, r);                         // A_i != R_i
    const Literal gt = g.addAnd(a, complementLiteral(r));       // A_i > R_i
    const Literal term = g.addAnd(flag, gt);                    // first divergence wins
    out = g.addOr(out, term);
    flag = g.addAnd(flag, complementLiteral(neq));              // still equal
  }
  net.output = out;
  g.addOutput(out);
  return net;
}

}  // namespace

GreaterThanNetwork buildGreaterThan(int nbits) { return buildCore(nbits, nullptr); }

GreaterThanNetwork buildGreaterThanConst(std::uint32_t aValue, int nbits) {
  if (nbits < 31 && aValue >= (std::uint32_t{1} << nbits)) {
    throw std::invalid_argument("buildGreaterThanConst: value does not fit");
  }
  return buildCore(nbits, &aValue);
}

SlSchedule scheduleForSl(const Xag& xag) {
  return SlSchedule{xag.numGatesInCone(), xag.depth()};
}

}  // namespace aimsc::logic
