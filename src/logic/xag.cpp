#include "logic/xag.hpp"

#include <algorithm>
#include <stdexcept>

namespace aimsc::logic {

Xag::Xag() {
  nodes_.push_back(Node{NodeType::Constant, 0, 0});  // node 0 = constant false
}

Literal Xag::addInput(std::string name) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{NodeType::Input, 0, 0});
  inputs_.push_back(id);
  inputNames_.push_back(std::move(name));
  return makeLiteral(id, false);
}

Literal Xag::lookupOrInsert(NodeType t, Literal a, Literal b) {
  if (a > b) std::swap(a, b);  // canonical order
  const std::uint64_t key = (static_cast<std::uint64_t>(t) << 62) |
                            (static_cast<std::uint64_t>(a) << 31) |
                            static_cast<std::uint64_t>(b);
  const auto it = structural_.find(key);
  if (it != structural_.end()) return makeLiteral(it->second, false);
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{t, a, b});
  structural_.emplace(key, id);
  if (t == NodeType::And) {
    ++andCount_;
  } else {
    ++xorCount_;
  }
  return makeLiteral(id, false);
}

Literal Xag::addAnd(Literal a, Literal b) {
  // Constant folding.
  if (a == constantFalse() || b == constantFalse()) return constantFalse();
  if (a == constantTrue()) return b;
  if (b == constantTrue()) return a;
  if (a == b) return a;
  if (a == complementLiteral(b)) return constantFalse();
  return lookupOrInsert(NodeType::And, a, b);
}

Literal Xag::addXor(Literal a, Literal b) {
  if (a == constantFalse()) return b;
  if (b == constantFalse()) return a;
  if (a == constantTrue()) return complementLiteral(b);
  if (b == constantTrue()) return complementLiteral(a);
  if (a == b) return constantFalse();
  if (a == complementLiteral(b)) return constantTrue();
  // Normalize complements out of XOR inputs (XOR(~a, b) = ~XOR(a, b)).
  bool outCompl = false;
  if (literalComplemented(a)) {
    a = complementLiteral(a);
    outCompl = !outCompl;
  }
  if (literalComplemented(b)) {
    b = complementLiteral(b);
    outCompl = !outCompl;
  }
  Literal r = lookupOrInsert(NodeType::Xor, a, b);
  return outCompl ? complementLiteral(r) : r;
}

std::size_t Xag::depth() const {
  std::vector<std::size_t> d(nodes_.size(), 0);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type == NodeType::And || n.type == NodeType::Xor) {
      d[i] = 1 + std::max(d[literalNode(n.a)], d[literalNode(n.b)]);
    }
  }
  std::size_t out = 0;
  for (const Literal l : outputs_) out = std::max(out, d[literalNode(l)]);
  return out;
}

std::size_t Xag::numGatesInCone() const {
  std::vector<bool> reachable(nodes_.size(), false);
  // Nodes are in topological order (children precede parents), so one
  // reverse sweep marks the whole cone.
  for (const Literal l : outputs_) reachable[literalNode(l)] = true;
  std::size_t count = 0;
  for (std::size_t i = nodes_.size(); i-- > 1;) {
    if (!reachable[i]) continue;
    const Node& n = nodes_[i];
    if (n.type == NodeType::And || n.type == NodeType::Xor) {
      ++count;
      reachable[literalNode(n.a)] = true;
      reachable[literalNode(n.b)] = true;
    }
  }
  return count;
}

std::vector<bool> Xag::evaluate(const std::vector<bool>& inputs) const {
  if (inputs.size() != inputs_.size()) {
    throw std::invalid_argument("Xag::evaluate: input count mismatch");
  }
  std::vector<bool> val(nodes_.size(), false);
  for (std::size_t i = 0; i < inputs_.size(); ++i) val[inputs_[i]] = inputs[i];
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type != NodeType::And && n.type != NodeType::Xor) continue;
    const bool a = val[literalNode(n.a)] ^ literalComplemented(n.a);
    const bool b = val[literalNode(n.b)] ^ literalComplemented(n.b);
    val[i] = n.type == NodeType::And ? (a && b) : (a != b);
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const Literal l : outputs_) {
    out.push_back(val[literalNode(l)] ^ literalComplemented(l));
  }
  return out;
}

std::vector<sc::Bitstream> Xag::simulate(
    const std::vector<sc::Bitstream>& inputs) const {
  if (inputs.size() != inputs_.size()) {
    throw std::invalid_argument("Xag::simulate: input count mismatch");
  }
  const std::size_t width = inputs.empty() ? 0 : inputs.front().size();
  for (const auto& s : inputs) {
    if (s.size() != width) {
      throw std::invalid_argument("Xag::simulate: input width mismatch");
    }
  }
  std::vector<sc::Bitstream> val(nodes_.size(), sc::Bitstream(width));
  for (std::size_t i = 0; i < inputs_.size(); ++i) val[inputs_[i]] = inputs[i];

  auto resolve = [&](Literal l) {
    return literalComplemented(l) ? ~val[literalNode(l)] : val[literalNode(l)];
  };

  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.type != NodeType::And && n.type != NodeType::Xor) continue;
    const sc::Bitstream a = resolve(n.a);
    const sc::Bitstream b = resolve(n.b);
    val[i] = n.type == NodeType::And ? (a & b) : (a ^ b);
  }
  std::vector<sc::Bitstream> out;
  out.reserve(outputs_.size());
  for (const Literal l : outputs_) out.push_back(resolve(l));
  return out;
}

}  // namespace aimsc::logic
