/// \file synth.hpp
/// \brief Synthesis of the in-memory greater-than comparison network
///        (paper Fig. 1b / Sec. III-A) and its scouting-logic schedule.
///
/// Comparison proceeds MSB to LSB, tracking an equality flag (FFlag): the
/// output is 1 at the first position where A_i = 1 and RN_i = 0 while all
/// higher positions were equal.  The generic network (A as inputs) costs
/// 5 gates per bit — the "5n operations" of the paper; folding a constant
/// operand A through the XAG builder (the logic-synthesis optimization the
/// paper delegates to [30]) leaves ~3 gates per one-bit and ~1 per
/// zero-bit of A.
#pragma once

#include <cstdint>

#include "logic/xag.hpp"

namespace aimsc::logic {

/// Greater-than network A > R over two n-bit operands (MSB-first inputs).
struct GreaterThanNetwork {
  Xag xag;
  std::vector<Literal> aInputs;  ///< MSB first; empty if A was folded
  std::vector<Literal> rInputs;  ///< MSB first
  Literal output = 0;
};

/// Builds the generic network with both operands symbolic.
GreaterThanNetwork buildGreaterThan(int nbits);

/// Builds the network with A fixed to \p aValue (constant folded).
GreaterThanNetwork buildGreaterThanConst(std::uint32_t aValue, int nbits);

/// Scouting-logic schedule statistics: every XAG gate is one sensing step
/// (complemented edges are free — NAND/NOR/XNOR references).
struct SlSchedule {
  std::size_t sensingSteps = 0;  ///< total SL reads
  std::size_t depth = 0;         ///< critical path in sensing steps
};

SlSchedule scheduleForSl(const Xag& xag);

}  // namespace aimsc::logic
