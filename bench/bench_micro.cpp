// google-benchmark micro suite: simulator kernel throughput (not a paper
// artifact — useful for keeping the simulator itself fast).
#include <benchmark/benchmark.h>

#include "bincim/aritpim.hpp"
#include "core/accelerator.hpp"
#include "sc/cordiv.hpp"
#include "sc/correlation.hpp"
#include "sc/ops.hpp"
#include "sc/rng.hpp"
#include "sc/sng.hpp"

namespace {

using namespace aimsc;

void BM_BitstreamAnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sc::Mt19937Source src(1);
  const sc::Bitstream a = sc::generateSbsFromProb(src, 0.5, 8, n);
  const sc::Bitstream b = sc::generateSbsFromProb(src, 0.5, 8, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a & b);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitstreamAnd)->Arg(256)->Arg(4096);

void BM_GenerateSbs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sc::Mt19937Source src(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sc::generateSbsFromProb(src, 0.37, 8, n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GenerateSbs)->Arg(256)->Arg(4096);

void BM_SobolSbs(benchmark::State& state) {
  sc::Sobol src(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sc::generateSbsFromProb(src, 0.37, 8, 256));
  }
}
BENCHMARK(BM_SobolSbs);

void BM_ImsngConversion(benchmark::State& state) {
  core::AcceleratorConfig cfg;
  cfg.streamLength = static_cast<std::size_t>(state.range(0));
  cfg.device = reram::DeviceParams::ideal();
  core::Accelerator acc(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.encodeProb(0.42));
  }
}
BENCHMARK(BM_ImsngConversion)->Arg(256)->Arg(1024);

void BM_ImsngConversionFaulty(benchmark::State& state) {
  core::AcceleratorConfig cfg;
  cfg.streamLength = 256;
  cfg.deviceVariability = true;
  cfg.device.sigmaLrs = 0.12;
  cfg.device.sigmaHrs = 1.1;
  cfg.faultModelSamples = 20000;
  core::Accelerator acc(cfg);
  acc.encodeProb(0.5);  // warm the fault-table cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.encodeProb(0.42));
  }
}
BENCHMARK(BM_ImsngConversionFaulty);

void BM_Cordiv(benchmark::State& state) {
  sc::Mt19937Source src(3);
  const auto [x, y] = sc::makeCorrelatedPair(src, 0.3, 0.6, 8, 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sc::cordivDivide(x, y));
  }
}
BENCHMARK(BM_Cordiv);

void BM_AritPimMul8(benchmark::State& state) {
  bincim::MagicEngine engine;
  bincim::AritPim pim(engine);
  std::uint32_t a = 123;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pim.mul(a, 45, 8));
    a = (a * 7 + 1) & 0xff;
  }
}
BENCHMARK(BM_AritPimMul8);

void BM_EndToEndPixelMultiply(benchmark::State& state) {
  core::AcceleratorConfig cfg;
  cfg.streamLength = 256;
  cfg.device = reram::DeviceParams::ideal();
  core::Accelerator acc(cfg);
  for (auto _ : state) {
    const sc::Bitstream x = acc.encodeProb(0.4);
    const sc::Bitstream y = acc.encodeProb(0.7);
    benchmark::DoNotOptimize(acc.decodeProb(acc.ops().multiply(x, y)));
  }
}
BENCHMARK(BM_EndToEndPixelMultiply);

}  // namespace

BENCHMARK_MAIN();
