// Reproduces paper Fig. 5: normalized throughput of the CMOS-based and
// ReRAM-based SC designs over the binary CIM reference (ref = 1.0).
//
// Part 2 measures the *simulator's* wall-clock throughput: the serial
// backend-generic kernel vs the same kernel on the tile-parallel engine
// (batched IMSNG + lane-pinned row tiles) across worker-thread counts,
// verifying that the tiled output is bit-identical at every thread count.
//
// Part 3 measures the software-SC substrate: the scalar SwScLfsr backend
// (one virtual RNG call per stream bit) against the SIMD-batched SwScSimd
// backend (bulk LFSR + packed comparator), verifying the two are
// bit-identical per seed.  Target: >= 8x at 256x256, N = 256.
//
// Part 4 measures the allocation-free hot path: the fused arena + *Into
// compositing kernel against a verbatim copy of the pre-arena allocating
// loop, on identically seeded SwScLfsr and ReRAM-SC backends.  Outputs must
// be bit-identical; target >= 2x serial at 256x256 on both substrates.  The
// fused kernel's steady-state arena growth is asserted to be zero.
//
// Results are also written to BENCH_throughput.json so the perf trajectory
// is machine-trackable.
//
// Usage: bench_fig5_throughput [size]   (default 256; CI smoke uses 32)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "core/backend_reram.hpp"
#include "core/backend_swsc.hpp"
#include "core/backend_swsc_simd.hpp"
#include "core/stream_arena.hpp"
#include "energy/report.hpp"
#include "energy/system_model.hpp"
#include "sc/bulk_sng.hpp"

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SweepPoint {
  std::size_t threads;
  double pixelsPerSec;
  double speedup;
};

struct WidthPoint {
  aimsc::sc::SimdMode mode;
  double pps = 0;
  bool bitIdentical = false;  ///< vs the forced-portable run
};

struct SwScResult {
  double scalarPps = 0;
  double simdPps = 0;  ///< Auto = the widest supported path
  double simdTiledPps = 0;
  bool bitIdentical = false;
  const char* simdWidth = "portable";  ///< what Auto resolved to
  std::vector<WidthPoint> widths;      ///< portable..avx512 sweep
  double sfmtScalarPps = 0;
  double sfmtSimdPps = 0;
  bool sfmtBitIdenticalToScalar = false;
  bool sfmtBitIdenticalToPortable = false;
};

struct AllocResult {
  double swscAllocPps = 0;
  double swscFusedPps = 0;
  double reramAllocPps = 0;
  double reramFusedPps = 0;
  bool swscBitIdentical = false;
  bool reramBitIdentical = false;
  bool swscZeroSteadyGrowth = false;
  bool reramZeroSteadyGrowth = false;
};

/// Verbatim pre-arena compositing row loop (the PR-4 baseline call
/// sequence): per-pixel allocating ops, per-row allocating encodes/decodes.
aimsc::img::Image compositeAllocBaseline(
    const aimsc::apps::CompositingScene& scene, aimsc::core::ScBackend& b) {
  using namespace aimsc;
  const std::size_t w = scene.background.width();
  img::Image out(w, scene.background.height());
  std::vector<std::uint8_t> frow(w);
  std::vector<std::uint8_t> brow(w);
  std::vector<std::uint8_t> arow(w);
  std::vector<core::ScValue> blended(w);
  for (std::size_t y = 0; y < out.height(); ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      frow[x] = scene.foreground.at(x, y);
      brow[x] = scene.background.at(x, y);
      arow[x] = scene.alpha.at(x, y);
    }
    const auto fs = b.encodePixels(frow);
    const auto bs = b.encodePixelsCorrelated(brow);
    const auto as = b.encodePixels(arow);
    for (std::size_t x = 0; x < w; ++x) {
      blended[x] = b.majMux(fs[x], bs[x], as[x]);
    }
    const auto row = b.decodePixels(blended);
    for (std::size_t x = 0; x < w; ++x) out.at(x, y) = row[x];
  }
  return out;
}

/// True when a warm arena adds no pool growth over the steady-state rows.
bool steadyStateGrowthIsZero(const aimsc::apps::CompositingScene& scene,
                             aimsc::core::ScBackend& b) {
  using namespace aimsc;
  core::StreamArena arena;
  img::Image out(scene.background.width(), scene.background.height());
  apps::compositeKernelRows(scene, b, arena, out, 0, 1);  // warm-up tile
  const std::uint64_t warm = arena.stats().growthEvents();
  const std::size_t rows = std::min<std::size_t>(out.height(), 4);
  arena.reset();  // the tile boundary: cursors rewind, capacity stays
  apps::compositeKernelRows(scene, b, arena, out, 1, rows);
  return arena.stats().growthEvents() == warm;
}

/// Best-of-\p reps wall clock of one freshly seeded kernel run per rep
/// (identical seeds, so every rep computes the same bits): small smoke
/// sizes finish in a couple of milliseconds, where a single sample is
/// dominated by scheduler noise — the best sample is the least-preempted
/// one.  \p run must build its backend per call so no state carries over.
template <typename RunFn>
double bestSeconds(int reps, RunFn&& run) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const double sec = run();
    if (sec < best) best = sec;
  }
  return best;
}

/// Part 4: the allocation-free hot path vs the allocating baseline.
AllocResult measuredAllocVsFused(std::size_t size,
                                 const aimsc::apps::CompositingScene& scene,
                                 const aimsc::apps::RunConfig& cfg) {
  using namespace aimsc;
  const auto kPixels = static_cast<double>(size * size);
  const int reps = size <= 96 ? 5 : 3;  // the alloc loop is the slow rep
  AllocResult r;

  core::SwScConfig swCfg;
  swCfg.streamLength = 256;
  {
    img::Image allocOut;
    img::Image fusedOut;
    r.swscAllocPps = kPixels / bestSeconds(reps, [&] {
      core::SwScBackend b(swCfg);
      const auto t0 = std::chrono::steady_clock::now();
      allocOut = compositeAllocBaseline(scene, b);
      return secondsSince(t0);
    });
    r.swscFusedPps = kPixels / bestSeconds(reps, [&] {
      core::SwScBackend b(swCfg);
      const auto t0 = std::chrono::steady_clock::now();
      fusedOut = apps::compositeKernel(scene, b);
      return secondsSince(t0);
    });
    r.swscBitIdentical = fusedOut.pixels() == allocOut.pixels();

    core::SwScBackend steadyBackend(swCfg);
    r.swscZeroSteadyGrowth = steadyStateGrowthIsZero(scene, steadyBackend);
  }
  {
    const auto matCfg = apps::tileConfigFor(cfg, apps::ParallelConfig{}).mat;
    img::Image allocOut;
    img::Image fusedOut;
    r.reramAllocPps = kPixels / bestSeconds(reps, [&] {
      core::ReramScBackend b(matCfg);
      const auto t0 = std::chrono::steady_clock::now();
      allocOut = compositeAllocBaseline(scene, b);
      return secondsSince(t0);
    });
    r.reramFusedPps = kPixels / bestSeconds(reps, [&] {
      core::ReramScBackend b(matCfg);
      const auto t0 = std::chrono::steady_clock::now();
      fusedOut = apps::compositeKernel(scene, b);
      return secondsSince(t0);
    });
    r.reramBitIdentical = fusedOut.pixels() == allocOut.pixels();

    core::ReramScBackend steadyBackend(matCfg);
    r.reramZeroSteadyGrowth = steadyStateGrowthIsZero(scene, steadyBackend);
  }

  std::printf(
      "\nAllocation-free hot path: %zux%zu compositing, N=256, serial\n"
      "  SwScLfsr allocating loop: %10.0f pixels/s\n"
      "  SwScLfsr fused kernel:    %10.0f pixels/s (%.1fx alloc)\n"
      "  ReRAM-SC allocating loop: %10.0f pixels/s\n"
      "  ReRAM-SC fused kernel:    %10.0f pixels/s (%.1fx alloc)\n"
      "  bit-identical fused vs alloc: SwSc %s, ReRAM %s\n"
      "  zero steady-state arena growth: SwSc %s, ReRAM %s\n",
      size, size, r.swscAllocPps, r.swscFusedPps,
      r.swscFusedPps / r.swscAllocPps, r.reramAllocPps, r.reramFusedPps,
      r.reramFusedPps / r.reramAllocPps, r.swscBitIdentical ? "yes" : "NO (BUG)",
      r.reramBitIdentical ? "yes" : "NO (BUG)",
      r.swscZeroSteadyGrowth ? "yes" : "NO (BUG)",
      r.reramZeroSteadyGrowth ? "yes" : "NO (BUG)");
  return r;
}

/// Part 3: the software-SC substrate — scalar vs SIMD-batched (same design
/// point, same seed, bit-identical output by contract), the full width
/// ladder (each explicit request clamps down on weak hosts, so every entry
/// is measurable everywhere), and the SFMT epoch-source family.
SwScResult measuredSwScSweep(std::size_t size,
                             const aimsc::apps::CompositingScene& scene) {
  using namespace aimsc;
  const auto kPixels = static_cast<double>(size * size);
  const int reps = 5;  // ~10-20ms per rep even at 256; best-of damps CI noise
  SwScResult r;
  r.simdWidth = sc::simdModeName(sc::resolveSimd(sc::SimdMode::Auto));

  core::SwScConfig scalarCfg;
  scalarCfg.streamLength = 256;
  img::Image scalarOut;
  r.scalarPps = kPixels / bestSeconds(reps, [&] {
    core::SwScBackend b(scalarCfg);
    const auto t0 = std::chrono::steady_clock::now();
    scalarOut = apps::compositeKernel(scene, b);
    return secondsSince(t0);
  });

  const auto runSimd = [&](core::SwScSng sng, sc::SimdMode mode,
                           img::Image& out) {
    core::SwScSimdConfig cfg;
    cfg.streamLength = 256;
    cfg.sng = sng;
    cfg.simd = mode;
    return kPixels / bestSeconds(reps, [&] {
      core::SwScSimdBackend b(cfg);
      const auto t0 = std::chrono::steady_clock::now();
      out = apps::compositeKernel(scene, b);
      return secondsSince(t0);
    });
  };

  img::Image simdOut;
  r.simdPps = runSimd(core::SwScSng::Lfsr, sc::SimdMode::Auto, simdOut);
  r.bitIdentical = simdOut.pixels() == scalarOut.pixels();

  // Width ladder, each rung against the forced-portable bits.
  img::Image portableOut;
  for (const sc::SimdMode mode :
       {sc::SimdMode::Portable, sc::SimdMode::Sse2, sc::SimdMode::Avx2,
        sc::SimdMode::Avx512}) {
    WidthPoint p;
    p.mode = mode;
    img::Image out;
    p.pps = runSimd(core::SwScSng::Lfsr, mode, out);
    if (mode == sc::SimdMode::Portable) portableOut = out;
    p.bitIdentical = out.pixels() == portableOut.pixels();
    r.widths.push_back(p);
  }

  // SFMT family: scalar reference vs the BulkSfmt-prefetching SIMD engine.
  core::SwScConfig sfmtCfg;
  sfmtCfg.streamLength = 256;
  sfmtCfg.sng = core::SwScSng::Sfmt;
  img::Image sfmtScalarOut;
  r.sfmtScalarPps = kPixels / bestSeconds(reps, [&] {
    core::SwScBackend b(sfmtCfg);
    const auto t0 = std::chrono::steady_clock::now();
    sfmtScalarOut = apps::compositeKernel(scene, b);
    return secondsSince(t0);
  });
  img::Image sfmtSimdOut;
  r.sfmtSimdPps = runSimd(core::SwScSng::Sfmt, sc::SimdMode::Auto, sfmtSimdOut);
  r.sfmtBitIdenticalToScalar = sfmtSimdOut.pixels() == sfmtScalarOut.pixels();
  img::Image sfmtPortableOut;
  runSimd(core::SwScSng::Sfmt, sc::SimdMode::Portable, sfmtPortableOut);
  r.sfmtBitIdenticalToPortable =
      sfmtSimdOut.pixels() == sfmtPortableOut.pixels();

  // SIMD x tile-parallel: the two speedup axes compose.
  core::ParallelConfig par;
  par.threads = 4;
  core::BackendFactoryConfig fleetCfg;
  fleetCfg.streamLength = 256;
  fleetCfg.seed = scalarCfg.seed;
  core::TileExecutor exec(
      core::makeBackendLanes(core::DesignKind::SwScSimd, fleetCfg, par.lanes),
      par);
  const auto t0 = std::chrono::steady_clock::now();
  apps::compositeKernelTiled(scene, exec);
  r.simdTiledPps = kPixels / secondsSince(t0);

  std::printf(
      "\nSoftware-SC substrate: %zux%zu compositing, N=256 "
      "(auto width: %s; AVX2 %s, AVX-512BW %s)\n"
      "  SwScLfsr scalar backend:  %10.0f pixels/s\n"
      "  SwScSimd serial backend:  %10.0f pixels/s (%.1fx scalar)\n"
      "  SwScSimd tiled, 4 threads:%10.0f pixels/s (%.1fx scalar)\n"
      "  SIMD bit-identical to scalar: %s\n",
      size, size, r.simdWidth, sc::cpuHasAvx2() ? "available" : "absent",
      sc::cpuHasAvx512bw() ? "available" : "absent", r.scalarPps, r.simdPps,
      r.simdPps / r.scalarPps, r.simdTiledPps, r.simdTiledPps / r.scalarPps,
      r.bitIdentical ? "yes" : "NO (BUG)");
  for (const WidthPoint& p : r.widths) {
    std::printf("  width %-8s: %10.0f pixels/s (%.1fx scalar), %s portable\n",
                sc::simdModeName(p.mode), p.pps, p.pps / r.scalarPps,
                p.bitIdentical ? "bit-identical to" : "DIVERGES FROM (BUG)");
  }
  std::printf(
      "  SFMT scalar backend:      %10.0f pixels/s\n"
      "  SFMT SIMD backend:        %10.0f pixels/s (%.1fx SFMT scalar)\n"
      "  SFMT bit-identical: scalar %s, portable %s\n",
      r.sfmtScalarPps, r.sfmtSimdPps, r.sfmtSimdPps / r.sfmtScalarPps,
      r.sfmtBitIdenticalToScalar ? "yes" : "NO (BUG)",
      r.sfmtBitIdenticalToPortable ? "yes" : "NO (BUG)");
  return r;
}

void measuredSweep(std::size_t size) {
  using namespace aimsc;
  const std::size_t kPixels = size * size;

  apps::RunConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.streamLength = 256;

  const apps::CompositingScene scene =
      apps::makeCompositingScene(size, size, cfg.seed);

  std::printf(
      "\nMeasured simulator throughput: %zux%zu compositing, N=%zu\n",
      size, size, cfg.streamLength);

  // Serial baseline: the SAME backend-generic kernel on one ReRAM-SC
  // backend, configured exactly like the tiled lanes (device params
  // included).
  core::ReramScBackend serialBackend(
      apps::tileConfigFor(cfg, apps::ParallelConfig{}).mat);
  const auto t0 = std::chrono::steady_clock::now();
  const img::Image serialOut = apps::compositeKernel(scene, serialBackend);
  const double serialSec = secondsSince(t0);
  const double serialPps = static_cast<double>(kPixels) / serialSec;
  std::printf("  serial kernel (1 backend): %8.0f pixels/s (%.2fs)\n",
              serialPps, serialSec);

  apps::ParallelConfig par;  // lanes=8, rowsPerTile=4
  std::vector<SweepPoint> sweep;
  img::Image firstTiled;
  bool bitIdentical = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    par.threads = threads;
    core::TileExecutor exec(apps::tileConfigFor(cfg, par));
    const auto t1 = std::chrono::steady_clock::now();
    const img::Image tiled = apps::compositeKernelTiled(scene, exec);
    const double sec = secondsSince(t1);
    const double pps = static_cast<double>(kPixels) / sec;
    sweep.push_back({threads, pps, pps / serialPps});
    if (firstTiled.empty()) {
      firstTiled = tiled;
    } else if (tiled.pixels() != firstTiled.pixels()) {
      bitIdentical = false;
    }
    std::printf("  tiled engine, %zu thread%s: %8.0f pixels/s (%.2fx serial)\n",
                threads, threads == 1 ? " " : "s", pps, pps / serialPps);
  }
  std::printf("  bit-identical across thread counts: %s\n",
              bitIdentical ? "yes" : "NO (BUG)");

  const SwScResult sw = measuredSwScSweep(size, scene);
  const AllocResult al = measuredAllocVsFused(size, scene, cfg);

  // Machine-readable trajectory for future PRs.
  FILE* f = std::fopen("BENCH_throughput.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"app\": \"compositing\",\n"
                 "  \"width\": %zu,\n"
                 "  \"height\": %zu,\n"
                 "  \"stream_length\": %zu,\n"
                 "  \"lanes\": %zu,\n"
                 "  \"rows_per_tile\": %zu,\n"
                 "  \"serial_pixels_per_sec\": %.1f,\n"
                 "  \"bit_identical_across_threads\": %s,\n"
                 "  \"tiled\": [\n",
                 size, size, cfg.streamLength, par.lanes, par.rowsPerTile,
                 serialPps, bitIdentical ? "true" : "false");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      std::fprintf(f,
                   "    {\"threads\": %zu, \"pixels_per_sec\": %.1f, "
                   "\"speedup_vs_serial\": %.2f}%s\n",
                   sweep[i].threads, sweep[i].pixelsPerSec, sweep[i].speedup,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"swsc\": {\n"
                 "    \"avx2\": %s,\n"
                 "    \"avx512\": %s,\n"
                 "    \"simd_width\": \"%s\",\n"
                 "    \"scalar_pixels_per_sec\": %.1f,\n"
                 "    \"simd_pixels_per_sec\": %.1f,\n"
                 "    \"simd_speedup_vs_scalar\": %.2f,\n"
                 "    \"simd_tiled4_pixels_per_sec\": %.1f,\n"
                 "    \"simd_bit_identical_to_scalar\": %s,\n",
                 aimsc::sc::cpuHasAvx2() ? "true" : "false",
                 aimsc::sc::cpuHasAvx512bw() ? "true" : "false", sw.simdWidth,
                 sw.scalarPps, sw.simdPps, sw.simdPps / sw.scalarPps,
                 sw.simdTiledPps, sw.bitIdentical ? "true" : "false");
    for (const WidthPoint& p : sw.widths) {
      std::fprintf(f,
                   "    \"width_pixels_per_sec_%s\": %.1f,\n"
                   "    \"width_bit_identical_%s\": %s,\n",
                   aimsc::sc::simdModeName(p.mode), p.pps,
                   aimsc::sc::simdModeName(p.mode),
                   p.bitIdentical ? "true" : "false");
    }
    std::fprintf(f,
                 "    \"sfmt_scalar_pixels_per_sec\": %.1f,\n"
                 "    \"sfmt_simd_pixels_per_sec\": %.1f,\n"
                 "    \"sfmt_simd_speedup_vs_scalar\": %.2f,\n"
                 "    \"sfmt_bit_identical_to_scalar\": %s,\n"
                 "    \"sfmt_bit_identical_to_portable\": %s\n"
                 "  },\n",
                 sw.sfmtScalarPps, sw.sfmtSimdPps,
                 sw.sfmtSimdPps / sw.sfmtScalarPps,
                 sw.sfmtBitIdenticalToScalar ? "true" : "false",
                 sw.sfmtBitIdenticalToPortable ? "true" : "false");
    std::fprintf(f,
                 "  \"alloc\": {\n"
                 "    \"swsc_alloc_pixels_per_sec\": %.1f,\n"
                 "    \"swsc_fused_pixels_per_sec\": %.1f,\n"
                 "    \"swsc_fused_speedup\": %.2f,\n"
                 "    \"reram_alloc_pixels_per_sec\": %.1f,\n"
                 "    \"reram_fused_pixels_per_sec\": %.1f,\n"
                 "    \"reram_fused_speedup\": %.2f,\n"
                 "    \"swsc_bit_identical\": %s,\n"
                 "    \"reram_bit_identical\": %s,\n"
                 "    \"swsc_zero_steady_state_growth\": %s,\n"
                 "    \"reram_zero_steady_state_growth\": %s\n"
                 "  }\n}\n",
                 al.swscAllocPps, al.swscFusedPps,
                 al.swscFusedPps / al.swscAllocPps, al.reramAllocPps,
                 al.reramFusedPps, al.reramFusedPps / al.reramAllocPps,
                 al.swscBitIdentical ? "true" : "false",
                 al.reramBitIdentical ? "true" : "false",
                 al.swscZeroSteadyGrowth ? "true" : "false",
                 al.reramZeroSteadyGrowth ? "true" : "false");
    std::fclose(f);
    std::puts("  wrote BENCH_throughput.json");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aimsc;
  const long sizeArg = argc > 1 ? std::atol(argv[1]) : 256;
  if (sizeArg < 1 || sizeArg > 1 << 14) {
    std::fprintf(stderr, "usage: bench_fig5_throughput [size in 1..16384]\n");
    return 1;
  }
  const auto size = static_cast<std::size_t>(sizeArg);

  std::puts(
      "Fig. 5: normalized throughput vs binary CIM (reference = 1.0)\n");

  const apps::AppKind appList[] = {apps::AppKind::Compositing,
                                   apps::AppKind::Bilinear,
                                   apps::AppKind::Matting};
  const std::size_t lengths[] = {32, 64, 128, 256};

  double avgReram = 0;
  double avgCmos = 0;
  int cells = 0;

  for (const auto app : appList) {
    const energy::AppProfile profile = apps::profileFor(app);
    std::printf("-- %s (binary CIM: %.1f Melem/s) --\n", profile.name.c_str(),
                energy::evaluateSystem(energy::Design::BinaryCim, profile, 256)
                        .throughputElemsPerSec /
                    1e6);
    energy::Table t({"Design", "N=32", "N=64", "N=128", "N=256"});
    for (const auto design :
         {energy::Design::CmosScLfsr, energy::Design::ReramSc}) {
      std::vector<std::string> row{energy::designName(design)};
      for (const std::size_t n : lengths) {
        const double s = energy::throughputImprovement(design, profile, n);
        row.push_back(energy::fmt(s, 2));
        if (design == energy::Design::ReramSc) {
          avgReram += s;
        } else {
          avgCmos += s;
        }
      }
      t.addRow(row);
    }
    std::fputs(t.toString().c_str(), stdout);
    cells += 4;
  }

  avgReram /= cells;
  avgCmos /= cells;
  std::printf(
      "\nAverage throughput vs binary CIM: ReRAM-SC %.2fx, CMOS-SC %.2fx"
      "\n=> ReRAM-SC vs binary CIM: %.2fx (paper: 2.16x); vs CMOS-SC: %.2fx"
      " (paper: 1.39x)\n",
      avgReram, avgCmos, avgReram, avgReram / avgCmos);

  measuredSweep(size);
  return 0;
}
