// Reproduces paper Fig. 5: normalized throughput of the CMOS-based and
// ReRAM-based SC designs over the binary CIM reference (ref = 1.0).
//
// Part 2 measures the *simulator's* wall-clock throughput: the serial
// backend-generic kernel vs the same kernel on the tile-parallel engine
// (batched IMSNG + lane-pinned row tiles) across worker-thread counts,
// verifying that the tiled output is bit-identical at every thread count.
// Results are also written to BENCH_throughput.json so the perf trajectory
// is machine-trackable.
//
// Usage: bench_fig5_throughput [size]   (default 256; CI smoke uses 32)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "core/backend_reram.hpp"
#include "energy/report.hpp"
#include "energy/system_model.hpp"

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SweepPoint {
  std::size_t threads;
  double pixelsPerSec;
  double speedup;
};

void measuredSweep(std::size_t size) {
  using namespace aimsc;
  const std::size_t kPixels = size * size;

  apps::RunConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.streamLength = 256;

  const apps::CompositingScene scene =
      apps::makeCompositingScene(size, size, cfg.seed);

  std::printf(
      "\nMeasured simulator throughput: %zux%zu compositing, N=%zu\n",
      size, size, cfg.streamLength);

  // Serial baseline: the SAME backend-generic kernel on one ReRAM-SC
  // backend, configured exactly like the tiled lanes (device params
  // included).
  core::ReramScBackend serialBackend(
      apps::tileConfigFor(cfg, apps::ParallelConfig{}).mat);
  const auto t0 = std::chrono::steady_clock::now();
  const img::Image serialOut = apps::compositeKernel(scene, serialBackend);
  const double serialSec = secondsSince(t0);
  const double serialPps = static_cast<double>(kPixels) / serialSec;
  std::printf("  serial kernel (1 backend): %8.0f pixels/s (%.2fs)\n",
              serialPps, serialSec);

  apps::ParallelConfig par;  // lanes=8, rowsPerTile=4
  std::vector<SweepPoint> sweep;
  img::Image firstTiled;
  bool bitIdentical = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    par.threads = threads;
    core::TileExecutor exec(apps::tileConfigFor(cfg, par));
    const auto t1 = std::chrono::steady_clock::now();
    const img::Image tiled = apps::compositeKernelTiled(scene, exec);
    const double sec = secondsSince(t1);
    const double pps = static_cast<double>(kPixels) / sec;
    sweep.push_back({threads, pps, pps / serialPps});
    if (firstTiled.empty()) {
      firstTiled = tiled;
    } else if (tiled.pixels() != firstTiled.pixels()) {
      bitIdentical = false;
    }
    std::printf("  tiled engine, %zu thread%s: %8.0f pixels/s (%.2fx serial)\n",
                threads, threads == 1 ? " " : "s", pps, pps / serialPps);
  }
  std::printf("  bit-identical across thread counts: %s\n",
              bitIdentical ? "yes" : "NO (BUG)");

  // Machine-readable trajectory for future PRs.
  FILE* f = std::fopen("BENCH_throughput.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"app\": \"compositing\",\n"
                 "  \"width\": %zu,\n"
                 "  \"height\": %zu,\n"
                 "  \"stream_length\": %zu,\n"
                 "  \"lanes\": %zu,\n"
                 "  \"rows_per_tile\": %zu,\n"
                 "  \"serial_pixels_per_sec\": %.1f,\n"
                 "  \"bit_identical_across_threads\": %s,\n"
                 "  \"tiled\": [\n",
                 size, size, cfg.streamLength, par.lanes, par.rowsPerTile,
                 serialPps, bitIdentical ? "true" : "false");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      std::fprintf(f,
                   "    {\"threads\": %zu, \"pixels_per_sec\": %.1f, "
                   "\"speedup_vs_serial\": %.2f}%s\n",
                   sweep[i].threads, sweep[i].pixelsPerSec, sweep[i].speedup,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::puts("  wrote BENCH_throughput.json");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aimsc;
  const long sizeArg = argc > 1 ? std::atol(argv[1]) : 256;
  if (sizeArg < 1 || sizeArg > 1 << 14) {
    std::fprintf(stderr, "usage: bench_fig5_throughput [size in 1..16384]\n");
    return 1;
  }
  const auto size = static_cast<std::size_t>(sizeArg);

  std::puts(
      "Fig. 5: normalized throughput vs binary CIM (reference = 1.0)\n");

  const apps::AppKind appList[] = {apps::AppKind::Compositing,
                                   apps::AppKind::Bilinear,
                                   apps::AppKind::Matting};
  const std::size_t lengths[] = {32, 64, 128, 256};

  double avgReram = 0;
  double avgCmos = 0;
  int cells = 0;

  for (const auto app : appList) {
    const energy::AppProfile profile = apps::profileFor(app);
    std::printf("-- %s (binary CIM: %.1f Melem/s) --\n", profile.name.c_str(),
                energy::evaluateSystem(energy::Design::BinaryCim, profile, 256)
                        .throughputElemsPerSec /
                    1e6);
    energy::Table t({"Design", "N=32", "N=64", "N=128", "N=256"});
    for (const auto design :
         {energy::Design::CmosScLfsr, energy::Design::ReramSc}) {
      std::vector<std::string> row{energy::designName(design)};
      for (const std::size_t n : lengths) {
        const double s = energy::throughputImprovement(design, profile, n);
        row.push_back(energy::fmt(s, 2));
        if (design == energy::Design::ReramSc) {
          avgReram += s;
        } else {
          avgCmos += s;
        }
      }
      t.addRow(row);
    }
    std::fputs(t.toString().c_str(), stdout);
    cells += 4;
  }

  avgReram /= cells;
  avgCmos /= cells;
  std::printf(
      "\nAverage throughput vs binary CIM: ReRAM-SC %.2fx, CMOS-SC %.2fx"
      "\n=> ReRAM-SC vs binary CIM: %.2fx (paper: 2.16x); vs CMOS-SC: %.2fx"
      " (paper: 1.39x)\n",
      avgReram, avgCmos, avgReram, avgReram / avgCmos);

  measuredSweep(size);
  return 0;
}
