// Reproduces paper Fig. 4: normalized energy savings of the CMOS-based and
// ReRAM-based SC designs over the binary CIM reference (ref = 1.0), per
// application and stream length.
#include <cstdio>

#include "apps/runner.hpp"
#include "energy/report.hpp"
#include "energy/system_model.hpp"

int main() {
  using namespace aimsc;

  std::puts(
      "Fig. 4: normalized energy savings vs binary CIM (reference = 1.0)\n");

  const apps::AppKind appList[] = {apps::AppKind::Compositing,
                                   apps::AppKind::Bilinear,
                                   apps::AppKind::Matting};
  const std::size_t lengths[] = {32, 64, 128, 256};

  double avgReram = 0;
  double avgCmos = 0;
  int cells = 0;

  for (const auto app : appList) {
    const energy::AppProfile profile = apps::profileFor(app);
    std::printf("-- %s (binary CIM: %.0f gate cycles/elem, %.2f nJ/elem) --\n",
                profile.name.c_str(), profile.bincimGateOps,
                energy::evaluateSystem(energy::Design::BinaryCim, profile, 256)
                    .energyPerElemNJ);
    energy::Table t({"Design", "N=32", "N=64", "N=128", "N=256"});
    for (const auto design :
         {energy::Design::CmosScLfsr, energy::Design::ReramSc}) {
      std::vector<std::string> row{energy::designName(design)};
      for (const std::size_t n : lengths) {
        const double s = energy::energySavings(design, profile, n);
        row.push_back(energy::fmt(s, 2));
        if (design == energy::Design::ReramSc) {
          avgReram += s;
        } else {
          avgCmos += s;
        }
      }
      t.addRow(row);
    }
    std::fputs(t.toString().c_str(), stdout);
    cells += 4;
  }

  avgReram /= cells;
  avgCmos /= cells;
  std::printf(
      "\nAverage energy savings vs binary CIM: ReRAM-SC %.2fx, CMOS-SC %.2fx"
      "\n=> ReRAM-SC vs binary CIM: %.2fx (paper: 2.8x); vs CMOS-SC: %.2fx"
      " (paper: 1.15x)\n",
      avgReram, avgCmos, avgReram, avgReram / avgCmos);
  return 0;
}
