// Reproduces paper Table IV: SSIM(%) / PSNR(dB) of the three image
// applications, fault-free (x) and under CIM faults (v), comparing the
// binary CIM baseline [35] against ReRAM-SC at N in {32, 64, 128, 256}.
//
// Fault rates derive from the VCM-style device distributions (HRS
// instability corner, reram/fault_model.*); faulty numbers are averaged
// over `runs` seeds (paper: 1000 runs; default here 3 for runtime — pass a
// higher count to tighten).
//
// Usage: bench_table4_quality [runs] [imageSize]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "energy/report.hpp"

namespace {

using namespace aimsc;

struct Cell {
  double ssim = 0;
  double psnr = 0;
};

std::string fmtCell(const Cell& c) {
  return energy::fmt(c.ssim, 1) + "/" + energy::fmt(c.psnr, 1);
}

template <typename RunFn>
Cell averaged(RunFn&& run, int runs) {
  Cell acc;
  for (int r = 0; r < runs; ++r) {
    const apps::Quality q = run(r);
    acc.ssim += q.ssimPct;
    acc.psnr += q.psnrDb;
  }
  acc.ssim /= runs;
  acc.psnr /= runs;
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::size_t size = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 48;

  std::printf(
      "Table IV: SSIM(%%)/PSNR(dB), fault-free (x) vs CIM faults (v)\n"
      "(%d fault runs, %zux%zu synthetic scenes; paper: 1000 runs on natural"
      " images)\n\n",
      runs, size, size);

  const apps::AppKind appList[] = {apps::AppKind::Compositing,
                                   apps::AppKind::Bilinear,
                                   apps::AppKind::Matting};

  energy::Table table({"Design", "Compositing x", "Compositing v",
                       "Bilinear x", "Bilinear v", "Matting x", "Matting v"});

  auto makeCfg = [&](std::size_t n, bool faults, std::uint64_t seed) {
    apps::RunConfig cfg;
    cfg.width = size;
    cfg.height = size;
    cfg.streamLength = n;
    cfg.injectFaults = faults;
    if (faults) cfg.device = apps::defaultFaultyDevice();
    cfg.seed = 42 + seed * 1000003;
    return cfg;
  };

  // Binary CIM reference row (N-independent).
  {
    std::vector<std::string> row{"Binary CIM [35]"};
    for (const auto app : appList) {
      const Cell clean = averaged(
          [&](int r) {
            return apps::runApp(app, apps::DesignKind::BinaryCim,
                                 makeCfg(256, false, r));
          },
          1);  // deterministic when fault-free
      const Cell faulty = averaged(
          [&](int r) { return apps::runApp(app, apps::DesignKind::BinaryCim,
                               makeCfg(256, true, r)); },
          runs);
      row.push_back(fmtCell(clean));
      row.push_back(fmtCell(faulty));
    }
    table.addRow(row);
    table.addRule();
  }

  // ReRAM-SC rows across stream lengths.
  for (const std::size_t n : {32u, 64u, 128u, 256u}) {
    std::vector<std::string> row{"ReRAM-SC N=" + std::to_string(n)};
    for (const auto app : appList) {
      const Cell clean = averaged(
          [&](int r) { return apps::runApp(app, apps::DesignKind::ReramSc,
                               makeCfg(n, false, r)); },
          runs);
      const Cell faulty = averaged(
          [&](int r) { return apps::runApp(app, apps::DesignKind::ReramSc,
                               makeCfg(n, true, r)); },
          runs);
      row.push_back(fmtCell(clean));
      row.push_back(fmtCell(faulty));
    }
    table.addRow(row);
  }
  std::fputs(table.toString().c_str(), stdout);

  // Headline statistic: average quality drop under faults.
  double scDrop = 0;
  double binDrop = 0;
  int cells = 0;
  for (const auto app : appList) {
    const Cell bc = averaged(
        [&](int r) { return apps::runApp(app, apps::DesignKind::BinaryCim,
                                 makeCfg(256, false, r)); }, 1);
    const Cell bf = averaged(
        [&](int r) { return apps::runApp(app, apps::DesignKind::BinaryCim,
                               makeCfg(256, true, r)); },
        runs);
    binDrop += (bc.ssim - bf.ssim) / std::max(bc.ssim, 1.0) * 100.0;
    const Cell sc = averaged(
        [&](int r) { return apps::runApp(app, apps::DesignKind::ReramSc,
                             makeCfg(128, false, r)); },
        runs);
    const Cell sf = averaged(
        [&](int r) { return apps::runApp(app, apps::DesignKind::ReramSc,
                             makeCfg(128, true, r)); },
        runs);
    scDrop += (sc.ssim - sf.ssim) / std::max(sc.ssim, 1.0) * 100.0;
    ++cells;
  }
  std::printf(
      "\nAverage relative SSIM drop under CIM faults: ReRAM-SC %.1f%%, "
      "binary CIM %.1f%%\n(paper: ~5%% vs ~47%%, with matting the binary"
      " worst case)\n",
      scDrop / cells, binDrop / cells);
  return 0;
}
