// Reproduces paper Table IV: SSIM(%) / PSNR(dB) of the three image
// applications, fault-free (x) and under CIM faults (v), comparing the
// binary CIM baseline [35] against ReRAM-SC at N in {32, 64, 128, 256} —
// plus the vocabulary-extension workloads (Bernstein gamma, morphological
// opening) across ALL designs, with the bit-identity contracts of the
// promoted ops checked and emitted as a machine-readable "vocab" block in
// BENCH_quality.json (asserted by the CI bench smoke).
//
// Fault rates derive from the VCM-style device distributions (HRS
// instability corner, reram/fault_model.*), configured through the unified
// FaultPlan contract (device-variability class only — the Table IV
// protocol); faulty numbers are averaged over `runs` seeds (paper: 1000
// runs; default here 3 for runtime — pass a higher count to tighten).
//
// Usage: bench_table4_quality [runs] [imageSize] [design]
//   design (optional): restrict the vocab table to one execution substrate
//   (any spelling parseDesignKind accepts, e.g. "swsc-simd", "ReRAM-SC").
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "core/backend_reram.hpp"
#include "core/backend_swsc.hpp"
#include "core/backend_swsc_simd.hpp"
#include "energy/report.hpp"
#include "img/synth.hpp"
#include "reliability/fault_plan.hpp"
#include "sc/bernstein.hpp"

namespace {

using namespace aimsc;

struct Cell {
  double ssim = 0;
  double psnr = 0;
};

std::string fmtCell(const Cell& c) {
  return energy::fmt(c.ssim, 1) + "/" + energy::fmt(c.psnr, 1);
}

template <typename RunFn>
Cell averaged(RunFn&& run, int runs) {
  Cell acc;
  for (int r = 0; r < runs; ++r) {
    const apps::Quality q = run(r);
    acc.ssim += q.ssimPct;
    acc.psnr += q.psnrDb;
  }
  acc.ssim /= runs;
  acc.psnr /= runs;
  return acc;
}

/// Bit-identity contracts of the promoted vocabulary, checked on small
/// scenes: SwScSimd vs SwScLfsr per op and per kernel, and the fused
/// (arena + *Into) gamma kernel vs a verbatim allocating per-pixel loop on
/// an identically seeded ReRAM accelerator.
struct VocabIdentity {
  bool simdMinimum = false;
  bool simdMaximum = false;
  bool simdAddApprox = false;
  bool simdBernstein = false;
  bool simdGamma = false;
  bool simdMorphology = false;
  bool reramGammaFused = false;
};


VocabIdentity checkVocabIdentity() {
  VocabIdentity id;
  core::SwScConfig swCfg;
  swCfg.streamLength = 256;
  core::SwScBackend scalar(swCfg);
  core::SwScSimdConfig simdCfg;
  static_cast<core::SwScConfig&>(simdCfg) = swCfg;
  core::SwScSimdBackend simd(simdCfg);

  // One correlated pair + one independent pair per engine, same epochs.
  const auto sx = scalar.encodePixels(std::vector<std::uint8_t>{200});
  const auto sy = scalar.encodePixelsCorrelated(std::vector<std::uint8_t>{80});
  const auto vx = simd.encodePixels(std::vector<std::uint8_t>{200});
  const auto vy = simd.encodePixelsCorrelated(std::vector<std::uint8_t>{80});
  id.simdMinimum =
      scalar.minimum(sx[0], sy[0]).stream == simd.minimum(vx[0], vy[0]).stream;
  id.simdMaximum =
      scalar.maximum(sx[0], sy[0]).stream == simd.maximum(vx[0], vy[0]).stream;
  const core::ScValue sa = scalar.encodePixel(70);
  const core::ScValue sb = scalar.encodePixel(90);
  const core::ScValue va = simd.encodePixel(70);
  const core::ScValue vb = simd.encodePixel(90);
  id.simdAddApprox =
      scalar.addApprox(sa, sb).stream == simd.addApprox(va, vb).stream;

  const std::vector<double> bern{0.0, 0.2, 0.6, 1.0};
  const auto sCopies = scalar.encodeCopies(140, 3);
  const auto vCopies = simd.encodeCopies(140, 3);
  std::vector<core::ScValue> sCoeffs;
  std::vector<core::ScValue> vCoeffs;
  for (const double bk : bern) {
    sCoeffs.push_back(scalar.encodeProb(bk));
    vCoeffs.push_back(simd.encodeProb(bk));
  }
  id.simdBernstein = scalar.bernsteinSelect(sCopies, sCoeffs).stream ==
                     simd.bernsteinSelect(vCopies, vCoeffs).stream;

  const img::Image scene = img::naturalScene(12, 10, 17);
  {
    core::SwScBackend s2(swCfg);
    core::SwScSimdBackend v2(simdCfg);
    id.simdGamma = apps::gammaKernel(scene, 2.2, s2, 4).pixels() ==
                   apps::gammaKernel(scene, 2.2, v2, 4).pixels();
  }
  {
    core::SwScBackend s2(swCfg);
    core::SwScSimdBackend v2(simdCfg);
    id.simdMorphology = apps::openKernel(scene, s2).pixels() ==
                        apps::openKernel(scene, v2).pixels();
  }
  {
    // Verbatim allocating per-pixel gamma loop (the pre-arena call
    // sequence) vs the fused kernel on an identically seeded mat.
    core::AcceleratorConfig ac;
    ac.streamLength = 256;
    ac.device = reram::DeviceParams::ideal();
    core::Accelerator allocAcc(ac);
    const int degree = 4;
    const std::vector<double> bern44 = sc::bernsteinCoefficientsOf(
        [](double t) { return std::pow(t, 2.2); }, degree);
    img::Image allocOut(scene.width(), scene.height());
    for (std::size_t i = 0; i < allocOut.size(); ++i) {
      std::vector<sc::Bitstream> xCopies;
      for (int j = 0; j < degree; ++j) {
        xCopies.push_back(allocAcc.encodePixel(scene[i]));
      }
      std::vector<sc::Bitstream> coeffs;
      for (const double bk : bern44) coeffs.push_back(allocAcc.encodeProb(bk));
      allocOut[i] =
          allocAcc.decodePixel(allocAcc.ops().bernsteinSelect(xCopies, coeffs));
    }
    core::Accelerator kernelAcc(ac);
    core::ReramScBackend backend(kernelAcc);
    id.reramGammaFused =
        apps::gammaKernel(scene, 2.2, backend, degree).pixels() ==
        allocOut.pixels();
  }
  return id;
}

}  // namespace

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::size_t size = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 48;
  bool designFilterSet = false;
  apps::DesignKind designFilter = apps::DesignKind::ReramSc;
  if (argc > 3) {
    try {
      designFilter = core::parseDesignKind(argv[3]);
      designFilterSet = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  std::printf(
      "Table IV: SSIM(%%)/PSNR(dB), fault-free (x) vs CIM faults (v)\n"
      "(%d fault runs, %zux%zu synthetic scenes; paper: 1000 runs on natural"
      " images)\n\n",
      runs, size, size);

  const apps::AppKind appList[] = {apps::AppKind::Compositing,
                                   apps::AppKind::Bilinear,
                                   apps::AppKind::Matting};

  energy::Table table({"Design", "Compositing x", "Compositing v",
                       "Bilinear x", "Bilinear v", "Matting x", "Matting v"});

  auto makeCfg = [&](std::size_t n, bool faults, std::uint64_t seed) {
    apps::RunConfig cfg;
    cfg.width = size;
    cfg.height = size;
    cfg.streamLength = n;
    if (faults) {
      cfg.faults =
          reliability::FaultPlan::deviceOnly(apps::defaultFaultyDevice());
    }
    cfg.seed = 42 + seed * 1000003;
    return cfg;
  };

  // Binary CIM reference row (N-independent).
  {
    std::vector<std::string> row{"Binary CIM [35]"};
    for (const auto app : appList) {
      const Cell clean = averaged(
          [&](int r) {
            return apps::runApp(app, apps::DesignKind::BinaryCim,
                                 makeCfg(256, false, r));
          },
          1);  // deterministic when fault-free
      const Cell faulty = averaged(
          [&](int r) { return apps::runApp(app, apps::DesignKind::BinaryCim,
                               makeCfg(256, true, r)); },
          runs);
      row.push_back(fmtCell(clean));
      row.push_back(fmtCell(faulty));
    }
    table.addRow(row);
    table.addRule();
  }

  // ReRAM-SC rows across stream lengths.
  for (const std::size_t n : {32u, 64u, 128u, 256u}) {
    std::vector<std::string> row{"ReRAM-SC N=" + std::to_string(n)};
    for (const auto app : appList) {
      const Cell clean = averaged(
          [&](int r) { return apps::runApp(app, apps::DesignKind::ReramSc,
                               makeCfg(n, false, r)); },
          runs);
      const Cell faulty = averaged(
          [&](int r) { return apps::runApp(app, apps::DesignKind::ReramSc,
                               makeCfg(n, true, r)); },
          runs);
      row.push_back(fmtCell(clean));
      row.push_back(fmtCell(faulty));
    }
    table.addRow(row);
  }
  std::fputs(table.toString().c_str(), stdout);

  // --- vocabulary extension: gamma + morphology across ALL designs ---------
  // The promoted ops (minimum/maximum/addApprox/bernsteinSelect) unlock the
  // two workloads on every substrate; N = 256 for the stream designs.
  const apps::DesignKind vocabDesigns[] = {
      apps::DesignKind::SwScLfsr, apps::DesignKind::SwScSobol,
      apps::DesignKind::SwScSimd, apps::DesignKind::ReramSc,
      apps::DesignKind::BinaryCim};
  const apps::AppKind vocabApps[] = {apps::AppKind::Gamma,
                                     apps::AppKind::Morphology};
  struct VocabRow {
    apps::DesignKind design;
    Cell cells[4];  // gamma x/v, morphology x/v
  };
  std::vector<VocabRow> vocabRows;
  std::printf("\nVocabulary extension (Bernstein gamma 2.2, 3x3 opening):\n");
  energy::Table vt({"Design", "Gamma x", "Gamma v", "Morphology x",
                    "Morphology v"});
  for (const auto design : vocabDesigns) {
    if (designFilterSet && design != designFilter) continue;
    VocabRow vr{design, {}};
    std::vector<std::string> row{core::designKindName(design)};
    int cell = 0;
    for (const auto app : vocabApps) {
      for (const bool faults : {false, true}) {
        vr.cells[cell] = averaged(
            [&](int r) {
              return apps::runApp(app, design, makeCfg(256, faults, r));
            },
            faults ? runs : 1);
        row.push_back(fmtCell(vr.cells[cell]));
        ++cell;
      }
    }
    vt.addRow(row);
    vocabRows.push_back(vr);
  }
  std::fputs(vt.toString().c_str(), stdout);

  const VocabIdentity vid = checkVocabIdentity();
  std::printf(
      "bit-identity: SwScSimd==SwScLfsr min %s max %s addApprox %s "
      "bernstein %s gamma %s morphology %s; ReRAM fused gamma %s\n",
      vid.simdMinimum ? "yes" : "NO", vid.simdMaximum ? "yes" : "NO",
      vid.simdAddApprox ? "yes" : "NO", vid.simdBernstein ? "yes" : "NO",
      vid.simdGamma ? "yes" : "NO", vid.simdMorphology ? "yes" : "NO",
      vid.reramGammaFused ? "yes" : "NO");

  // Machine-readable block for CI (see docs/BENCHMARKS.md).
  if (FILE* f = std::fopen("BENCH_quality.json", "w")) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::fprintf(f,
                 "{\n"
                 "  \"runs\": %d,\n"
                 "  \"width\": %zu,\n"
                 "  \"height\": %zu,\n"
                 "  \"vocab\": {\n"
                 "    \"simd_minimum_bit_identical\": %s,\n"
                 "    \"simd_maximum_bit_identical\": %s,\n"
                 "    \"simd_add_approx_bit_identical\": %s,\n"
                 "    \"simd_bernstein_bit_identical\": %s,\n"
                 "    \"simd_gamma_bit_identical\": %s,\n"
                 "    \"simd_morphology_bit_identical\": %s,\n"
                 "    \"reram_gamma_fused_bit_identical\": %s,\n"
                 "    \"quality\": [\n",
                 runs, size, size, b(vid.simdMinimum), b(vid.simdMaximum),
                 b(vid.simdAddApprox), b(vid.simdBernstein), b(vid.simdGamma),
                 b(vid.simdMorphology), b(vid.reramGammaFused));
    for (std::size_t i = 0; i < vocabRows.size(); ++i) {
      const VocabRow& vr = vocabRows[i];
      std::fprintf(
          f,
          "      {\"design\": \"%s\", \"gamma_ssim\": %.2f, "
          "\"gamma_ssim_faulty\": %.2f, \"morphology_ssim\": %.2f, "
          "\"morphology_ssim_faulty\": %.2f}%s\n",
          core::designKindName(vr.design), vr.cells[0].ssim, vr.cells[1].ssim,
          vr.cells[2].ssim, vr.cells[3].ssim,
          i + 1 < vocabRows.size() ? "," : "");
    }
    std::fprintf(f,
                 "    ]\n"
                 "  }\n"
                 "}\n");
    std::fclose(f);
    std::puts("wrote BENCH_quality.json");
  }

  // Headline statistic: average quality drop under faults.
  double scDrop = 0;
  double binDrop = 0;
  int cells = 0;
  for (const auto app : appList) {
    const Cell bc = averaged(
        [&](int r) { return apps::runApp(app, apps::DesignKind::BinaryCim,
                                 makeCfg(256, false, r)); }, 1);
    const Cell bf = averaged(
        [&](int r) { return apps::runApp(app, apps::DesignKind::BinaryCim,
                               makeCfg(256, true, r)); },
        runs);
    binDrop += (bc.ssim - bf.ssim) / std::max(bc.ssim, 1.0) * 100.0;
    const Cell sc = averaged(
        [&](int r) { return apps::runApp(app, apps::DesignKind::ReramSc,
                             makeCfg(128, false, r)); },
        runs);
    const Cell sf = averaged(
        [&](int r) { return apps::runApp(app, apps::DesignKind::ReramSc,
                             makeCfg(128, true, r)); },
        runs);
    scDrop += (sc.ssim - sf.ssim) / std::max(sc.ssim, 1.0) * 100.0;
    ++cells;
  }
  std::printf(
      "\nAverage relative SSIM drop under CIM faults: ReRAM-SC %.1f%%, "
      "binary CIM %.1f%%\n(paper: ~5%% vs ~47%%, with matting the binary"
      " worst case)\n",
      scDrop / cells, binDrop / cells);
  return 0;
}
