// Always-on accelerator service under load: open-loop generator driving
// mixed app/design/size traffic through AcceleratorService, against the
// status-quo serving loop (sequential one-shot apps::runApp per request).
//
// The daemon's edge is warm state, not different math: device-variability
// tenants (the Table IV serving scenario) pay the per-mat misdecision
// Monte-Carlo on EVERY one-shot call, while the service's FaultModelCache
// pays it once per (tenant plan, mat seed) and serves warm tables after —
// bit-identically (tests/test_service.cpp).  Batching additionally merges
// the lane tasks of concurrent requests into shared worker-pool waves.
//
// Phases:
//   1. solo reference   — maxBatch=1 service run of each traffic item (the
//                         byte oracle for determinism-under-batching)
//   2. sequential       — one-shot runApp per request, same lane fleet and
//                         thread budget, timed
//   3. batched service  — 3 client threads hammer the daemon, timed;
//                         every output byte-compared against phase 1
//   4. Poisson open loop — arrivals at ~75% of measured capacity; p50/p95/
//                         p99 service latency and batch-occupancy histogram
//
// Results land in BENCH_service.json (schema: docs/BENCHMARKS.md); the
// committed baseline is gated by scripts/compare_bench.py in CI.
//
// Usage: bench_service [size] [rounds]   (default 64 6; CI smoke uses 16 2)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "apps/runner.hpp"
#include "img/synth.hpp"
#include "service/accelerator_service.hpp"

namespace {

using namespace aimsc;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One recurring request shape in the traffic mix.  The owned frames model
/// a client that holds its input buffers; `seed` is fixed per item because
/// it models the tenant accelerator's RNG initialization, not per-frame
/// entropy — which is what lets the daemon keep fault tables warm.
struct TrafficItem {
  apps::AppKind app;
  core::DesignKind design;
  std::size_t size = 64;
  std::uint64_t seed = 0;
  service::TenantId tenant = 0;
  reliability::FaultPlan faults{};
  std::size_t replicas = 1;

  apps::CompositingScene compositing;
  apps::MattingScene matting;
  img::Image src;
  std::size_t outWidth = 0, outHeight = 0;
};

void synthesizeFrames(TrafficItem& it) {
  it.outWidth = it.size;
  it.outHeight = it.size;
  switch (it.app) {
    case apps::AppKind::Compositing:
      it.compositing = apps::makeCompositingScene(it.size, it.size, it.seed);
      break;
    case apps::AppKind::Matting:
      it.matting = apps::makeMattingScene(it.size, it.size, it.seed);
      break;
    case apps::AppKind::Bilinear:
      it.src = img::naturalScene(it.size, it.size, it.seed ^ 0xb111);
      it.outWidth = it.size * 2;
      it.outHeight = it.size * 2;
      break;
    default:
      it.src = img::naturalScene(it.size, it.size, it.seed ^ 0xb111);
      break;
  }
}

service::Request requestFor(const TrafficItem& it, img::Image& out) {
  service::Request q;
  q.app = it.app;
  q.design = it.design;
  q.streamLength = 256;
  q.seed = it.seed;
  q.faults = it.faults;
  q.redundancy.replicas = it.replicas;
  switch (it.app) {
    case apps::AppKind::Compositing:
      q.src = it.compositing.background;
      q.aux1 = it.compositing.foreground;
      q.aux2 = it.compositing.alpha;
      break;
    case apps::AppKind::Matting:
      q.src = it.matting.composite;
      q.aux1 = it.matting.background;
      q.aux2 = it.matting.foreground;
      break;
    default:
      q.src = it.src;
      break;
  }
  q.out = out;
  return q;
}

apps::RunConfig runConfigFor(const TrafficItem& it) {
  apps::RunConfig cfg;
  cfg.width = it.size;
  cfg.height = it.size;
  cfg.streamLength = 256;
  cfg.seed = it.seed;
  cfg.faults = it.faults;
  cfg.redundancy.replicas = it.replicas;
  return cfg;
}

/// Mixed traffic: 6 apps x 4 designs x 2 sizes x 3 tenants, two of them
/// serving with the paper's device-variability fault plans, one with
/// triple-modular redundancy.
std::vector<TrafficItem> makeTraffic(std::size_t size) {
  std::vector<TrafficItem> items;
  auto add = [&](apps::AppKind app, core::DesignKind design, std::size_t s,
                 std::uint64_t seed, service::TenantId tenant) -> TrafficItem& {
    TrafficItem it;
    it.app = app;
    it.design = design;
    it.size = s;
    it.seed = seed;
    it.tenant = tenant;
    items.push_back(std::move(it));
    return items.back();
  };
  add(apps::AppKind::Compositing, core::DesignKind::ReramSc, size, 101, 1)
      .faults = reliability::FaultPlan::deviceOnly(apps::defaultFaultyDevice());
  add(apps::AppKind::Gamma, core::DesignKind::SwScLfsr, size, 102, 2);
  add(apps::AppKind::Matting, core::DesignKind::SwScSobol, size, 103, 3);
  add(apps::AppKind::Filters, core::DesignKind::SwScSimd, size, 104, 1);
  add(apps::AppKind::Morphology, core::DesignKind::ReramSc, size, 105, 2);
  {
    reram::DeviceParams corner = apps::defaultFaultyDevice();
    corner.sigmaHrs *= 1.25;  // second tenant, second device corner
    add(apps::AppKind::Compositing, core::DesignKind::ReramSc, size, 106, 3)
        .faults = reliability::FaultPlan::deviceOnly(corner);
  }
  add(apps::AppKind::Bilinear, core::DesignKind::SwScLfsr,
      std::max<std::size_t>(size / 2, 4), 107, 1);
  add(apps::AppKind::Filters, core::DesignKind::SwScLfsr, size, 108, 2)
      .replicas = 3;
  for (auto& it : items) synthesizeFrames(it);
  return items;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  const long sizeArg = argc > 1 ? std::atol(argv[1]) : 64;
  const long roundsArg = argc > 2 ? std::atol(argv[2]) : 6;
  if (sizeArg < 8 || sizeArg > 1024 || roundsArg < 1 || roundsArg > 1000) {
    std::fprintf(stderr,
                 "usage: bench_service [size in 8..1024] [rounds in "
                 "1..1000]\n");
    return 1;
  }
  const auto size = static_cast<std::size_t>(sizeArg);
  const auto rounds = static_cast<std::size_t>(roundsArg);

  service::ServiceConfig sc;
  sc.lanes = 4;
  sc.rowsPerTile = 4;
  sc.maxBatch = 8;
  sc.flushDeadline = std::chrono::microseconds(500);
  sc.queueCapacity = 64;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  sc.workerThreads = std::min<std::size_t>(hw, sc.lanes);

  std::vector<TrafficItem> items = makeTraffic(size);
  const std::size_t total = items.size() * rounds;
  std::printf(
      "Service bench: %zu traffic items x %zu rounds at %zux%zu (N=256), "
      "%zu worker threads\n\n",
      items.size(), rounds, size, size, sc.workerThreads);

  // --- phase 1: solo byte oracle (own daemon, no cross-request batching) --
  std::vector<std::vector<std::uint8_t>> soloBytes(items.size());
  {
    service::ServiceConfig solo = sc;
    solo.maxBatch = 1;
    service::AcceleratorService svc(solo);
    for (std::size_t i = 0; i < items.size(); ++i) {
      img::Image out(items[i].outWidth, items[i].outHeight);
      service::Request q = requestFor(items[i], out);
      svc.run(items[i].tenant, q);
      soloBytes[i] = out.pixels();
    }
  }
  std::puts("  solo reference outputs captured");

  // --- phase 2: sequential one-shot serving loop --------------------------
  // Same lane fleet and thread budget per request; every call re-pays
  // scene/fleet setup, including the faulty tenants' Monte-Carlo campaign.
  apps::ParallelConfig par;
  par.lanes = sc.lanes;
  par.threads = sc.workerThreads;
  par.rowsPerTile = sc.rowsPerTile;
  Clock::time_point t0 = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const auto& it : items) {
      apps::runApp(it.app, it.design, runConfigFor(it), par);
    }
  }
  const double seqSecs = secondsSince(t0);
  const double seqRps = static_cast<double>(total) / seqSecs;
  std::printf("  sequential one-shot: %zu requests in %.2fs (%.2f req/s)\n",
              total, seqSecs, seqRps);

  // --- phase 3: batched service, 3 client threads saturating the queue ----
  service::AcceleratorService svc(sc);
  std::vector<img::Image> outs;
  outs.reserve(total);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const auto& it : items) outs.emplace_back(it.outWidth, it.outHeight);
  }
  t0 = Clock::now();
  {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 3; ++c) {
      clients.emplace_back([&, c] {
        // Submit the whole share first (backpressure-bounded), then drain:
        // keeps the queue full so the dispatcher can coalesce real batches.
        std::vector<service::Ticket> mine;
        for (std::size_t g = c; g < total; g += 3) {
          const TrafficItem& it = items[g % items.size()];
          service::Request q = requestFor(it, outs[g]);
          mine.push_back(svc.submit(it.tenant, q));
        }
        for (const service::Ticket& t : mine) svc.wait(t);
      });
    }
    for (auto& th : clients) th.join();
  }
  const double svcSecs = secondsSince(t0);
  const double svcRps = static_cast<double>(total) / svcSecs;
  const double speedup = svcRps / seqRps;
  std::printf("  batched service:     %zu requests in %.2fs (%.2f req/s)"
              " => %.2fx\n", total, svcSecs, svcRps, speedup);

  bool deterministic = true;
  for (std::size_t g = 0; g < total; ++g) {
    if (outs[g].pixels() != soloBytes[g % items.size()]) deterministic = false;
  }
  std::printf("  solo vs batched bytes: %s\n",
              deterministic ? "identical" : "DIFFER (BUG)");

  // --- phase 4: Poisson open loop at ~75% of measured capacity ------------
  const double offeredRps = 0.75 * svcRps;
  const std::size_t poissonCount = std::max<std::size_t>(2 * items.size(), 16);
  std::vector<img::Image> poissonOuts;
  poissonOuts.reserve(poissonCount);
  for (std::size_t g = 0; g < poissonCount; ++g) {
    const TrafficItem& it = items[g % items.size()];
    poissonOuts.emplace_back(it.outWidth, it.outHeight);
  }
  std::mt19937_64 rng(42);
  std::exponential_distribution<double> gap(offeredRps);
  std::vector<service::Ticket> tickets(poissonCount);
  t0 = Clock::now();
  for (std::size_t g = 0; g < poissonCount; ++g) {
    const TrafficItem& it = items[g % items.size()];
    service::Request q = requestFor(it, poissonOuts[g]);
    tickets[g] = svc.submit(it.tenant, q);
    std::this_thread::sleep_for(std::chrono::duration<double>(gap(rng)));
  }
  std::vector<double> latencies;
  latencies.reserve(poissonCount);
  for (std::size_t g = 0; g < poissonCount; ++g) {
    const service::RequestResult res = svc.wait(tickets[g]);
    latencies.push_back(res.queueMicros + res.execMicros);
  }
  const double p50 = percentile(latencies, 0.50);
  const double p95 = percentile(latencies, 0.95);
  const double p99 = percentile(latencies, 0.99);
  std::printf(
      "  poisson open loop:   %zu arrivals at %.1f req/s, latency p50 "
      "%.0fus p95 %.0fus p99 %.0fus\n",
      poissonCount, offeredRps, p50, p95, p99);

  const service::ServiceStats stats = svc.stats();
  std::printf(
      "  batches: %llu (mean occupancy %.2f), fault-model cache: %llu hits / "
      "%llu misses (%zu tables)\n",
      static_cast<unsigned long long>(stats.batches), stats.meanOccupancy(),
      static_cast<unsigned long long>(stats.faultModelCacheHits),
      static_cast<unsigned long long>(stats.faultModelCacheMisses),
      stats.faultModelCacheSize);

  FILE* f = std::fopen("BENCH_service.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"width\": %zu,\n"
                 "  \"height\": %zu,\n"
                 "  \"stream_length\": 256,\n"
                 "  \"lanes\": %zu,\n"
                 "  \"rows_per_tile\": %zu,\n"
                 "  \"worker_threads\": %zu,\n"
                 "  \"max_batch\": %zu,\n"
                 "  \"rounds\": %zu,\n"
                 "  \"requests\": %zu,\n"
                 "  \"sequential_one_shot_rps\": %.3f,\n"
                 "  \"service_batched_rps\": %.3f,\n"
                 "  \"service_batched_speedup\": %.2f,\n"
                 "  \"deterministic_under_batching\": %s,\n"
                 "  \"batched_speedup_ge_1p5\": %s,\n",
                 size, size, sc.lanes, sc.rowsPerTile, sc.workerThreads,
                 sc.maxBatch, rounds, total, seqRps, svcRps, speedup,
                 deterministic ? "true" : "false",
                 speedup >= 1.5 ? "true" : "false");
    std::fprintf(f,
                 "  \"fault_model_cache\": {\n"
                 "    \"hits\": %llu,\n"
                 "    \"misses\": %llu,\n"
                 "    \"entries\": %zu\n"
                 "  },\n"
                 "  \"poisson\": {\n"
                 "    \"offered_rps\": %.2f,\n"
                 "    \"latency_p50_us\": %.1f,\n"
                 "    \"latency_p95_us\": %.1f,\n"
                 "    \"latency_p99_us\": %.1f\n"
                 "  },\n"
                 "  \"mean_batch_occupancy\": %.2f,\n"
                 "  \"batch_occupancy\": [",
                 static_cast<unsigned long long>(stats.faultModelCacheHits),
                 static_cast<unsigned long long>(stats.faultModelCacheMisses),
                 stats.faultModelCacheSize, offeredRps, p50, p95, p99,
                 stats.meanOccupancy());
    for (std::size_t k = 1; k < stats.batchOccupancy.size(); ++k) {
      std::fprintf(f, "%s%llu", k == 1 ? "" : ", ",
                   static_cast<unsigned long long>(stats.batchOccupancy[k]));
    }
    std::fprintf(f, "]\n}\n");
    std::fclose(f);
    std::puts("  wrote BENCH_service.json");
  }
  return deterministic ? 0 : 1;
}
