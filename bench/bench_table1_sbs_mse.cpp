// Reproduces paper Table I: MSE(%) of SBS generation across RNG sources.
//
// Rows: IMSNG with segment size M = 5..9 (ReRAM TRNG segments + in-memory
// greater-than; statistically identical to the fault-free in-memory engine,
// see test_imsng.MatchesSoftwareComparatorExactly), software RNG (MT19937
// standing in for MATLAB rand), 8-bit maximal LFSR, 8-bit Sobol.
// Columns: bit-stream length N in {32, 64, 128, 256, 512}.
//
// Usage: bench_table1_sbs_mse [samples]   (default 20000; paper used 1e6)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "energy/report.hpp"
#include "sc/lds.hpp"
#include "sc/rng.hpp"
#include "sc/sng.hpp"

namespace {

using namespace aimsc;

double mseSbsPercent(sc::RandomSource& src, int mBits, std::size_t n,
                     int samples, std::uint64_t seed) {
  std::mt19937_64 eng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  double acc = 0.0;
  for (int s = 0; s < samples; ++s) {
    const double p = unit(eng);
    const sc::Bitstream bs = sc::generateSbsFromProb(src, p, mBits, n);
    const double err = bs.value() - p;
    acc += err * err;
  }
  return acc / samples * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  const int samples = argc > 1 ? std::atoi(argv[1]) : 20000;
  const std::size_t lengths[] = {32, 64, 128, 256, 512};

  std::printf(
      "Table I: MSE(%%) of SBS generation vs RNG source "
      "(%d samples per cell; paper used 1e6)\n\n",
      samples);

  energy::Table table({"RNG Source", "N:32", "64", "128", "256", "512"});

  // IMSNG rows: segment size M = 5..9 over true-random ReRAM TRNG bits.
  // Real TRNGs drift between calibrations; each conversion draws a random
  // ones-bias ~ N(0, 0.02) — the "random fluctuations" of Sec. III-A that
  // keep the IMSNG rows slightly above the ideal software RNG.
  for (int m = 5; m <= 9; ++m) {
    std::vector<std::string> row{"IMSNG  M=" + std::to_string(m)};
    for (const std::size_t n : lengths) {
      sc::TrngSource trng(0x7124 + static_cast<std::uint64_t>(m) * 131 + n);
      std::mt19937_64 driftEng(m * 997 + n);
      std::normal_distribution<double> drift(0.0, 0.02);
      std::mt19937_64 targetEng(11 * n + static_cast<std::uint64_t>(m));
      std::uniform_real_distribution<double> unit(0.0, 1.0);
      double acc = 0.0;
      for (int s = 0; s < samples; ++s) {
        trng.setOnesBias(std::clamp(drift(driftEng), -0.45, 0.45));
        const double p = unit(targetEng);
        const sc::Bitstream bs = sc::generateSbsFromProb(trng, p, m, n);
        const double err = bs.value() - p;
        acc += err * err;
      }
      row.push_back(energy::fmtMsePercent(acc / samples * 100.0));
    }
    table.addRow(row);
  }
  table.addRule();

  {
    sc::Mt19937Source sw(0x5eed);
    std::vector<std::string> row{"Software (MT19937)"};
    for (const std::size_t n : lengths) {
      row.push_back(energy::fmtMsePercent(mseSbsPercent(sw, 8, n, samples, n)));
    }
    table.addRow(row);
  }
  {
    sc::Lfsr prng = sc::Lfsr::paper8Bit();
    std::vector<std::string> row{"PRNG (8-bit LFSR)"};
    for (const std::size_t n : lengths) {
      row.push_back(
          energy::fmtMsePercent(mseSbsPercent(prng, 8, n, samples, 3 * n)));
    }
    table.addRow(row);
  }
  {
    std::vector<std::string> row{"QRNG (8-bit Sobol)"};
    for (const std::size_t n : lengths) {
      sc::Sobol qrng(0, 1);
      row.push_back(
          energy::fmtMsePercent(mseSbsPercent(qrng, 8, n, samples, 5 * n)));
    }
    table.addRow(row);
  }
  {
    // Extension row (not in the paper's table): the P2LSG powers-of-2 LDS
    // of ref [27] — QRNG-class accuracy from a bit-reversed counter.
    std::vector<std::string> row{"P2LSG [27] (ext.)"};
    for (const std::size_t n : lengths) {
      sc::P2lsg lds(1, 0);
      row.push_back(
          energy::fmtMsePercent(mseSbsPercent(lds, 8, n, samples, 7 * n)));
    }
    table.addRow(row);
  }

  std::fputs(table.toString().c_str(), stdout);
  std::puts(
      "\nPaper reference (Table I): IMSNG M=8: 0.557 / 0.300 / 0.177 / 0.107 /"
      " 0.074 ; SW: 0.529 / 0.264 / 0.131 / 0.065 / 0.032 ;\n"
      "LFSR: 1.069 / 0.554 / 0.288 / 0.137 / 0.071 ; Sobol: 0.033 / 0.008 /"
      " 0.002 / 5.05e-04 / 1.25e-04");
  return 0;
}
