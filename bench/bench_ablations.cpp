// Ablation studies for the design choices DESIGN.md calls out:
//  (a) MAJ-based MUX replacement vs exact MUX (accuracy vs select prob.)
//  (b) generic 5n greater-than schedule vs XAG constant folding (op count)
//  (c) correlation control: correlated vs independent inputs for XOR / CORDIV
//  (d) TRNG segment size M sweep at app level
//  (e) IMSNG-naive vs IMSNG-opt write traffic and endurance impact
#include <cmath>
#include <random>
#include <cstdio>

#include "core/accelerator.hpp"
#include "energy/calibration.hpp"
#include "energy/cost_model.hpp"
#include "core/pipeline.hpp"
#include "bincim/aritpim.hpp"
#include "energy/area.hpp"
#include "reram/scrimp.hpp"
#include "energy/report.hpp"
#include "logic/synth.hpp"
#include "sc/cordiv.hpp"
#include "sc/correlation.hpp"
#include "sc/ops.hpp"
#include "sc/sng.hpp"

namespace {

using namespace aimsc;

void ablationMajVsMux() {
  std::puts("(a) MAJ-as-MUX approximation error vs exact MUX, N = 4096");
  energy::Table t({"P(sel)", "exact MUX err", "MAJ err",
                   "analytic bound pb(1-pa)|2ps-1|"});
  sc::Mt19937Source src(1);
  const double pa = 0.8, pb = 0.35;
  for (const double ps : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    double muxErr = 0, majErr = 0;
    constexpr int kReps = 40;
    for (int r = 0; r < kReps; ++r) {
      const sc::Bitstream a = sc::generateSbsFromProb(src, pa, 8, 4096);
      const sc::Bitstream b = sc::generateSbsFromProb(src, pb, 8, 4096);
      const sc::Bitstream s = sc::generateSbsFromProb(src, ps, 8, 4096);
      const double expect = ps * pa + (1 - ps) * pb;
      muxErr += std::abs(sc::scScaledAddMux(a, b, s).value() - expect);
      majErr += std::abs(sc::scScaledAddMaj(a, b, s).value() - expect);
    }
    t.addRow({energy::fmt(ps, 1), energy::fmt(muxErr / kReps, 4),
              energy::fmt(majErr / kReps, 4),
              energy::fmt(pb * (1 - pa) * std::abs(2 * ps - 1), 4)});
  }
  std::fputs(t.toString().c_str(), stdout);
  std::puts("MAJ costs 1 scouting cycle vs 3 (AND,AND,OR) for the exact MUX;"
            " error vanishes at P(sel)=0.5.\n");
}

void ablationFolding() {
  std::puts("(b) greater-than network: generic 5n schedule vs XAG folding");
  energy::Table t({"M bits", "generic ops (5n)", "folded avg", "folded worst",
                   "latency generic (ns)", "latency folded avg (ns)"});
  for (const int m : {5, 6, 7, 8, 9}) {
    double total = 0;
    std::size_t worst = 0;
    const std::uint32_t full = 1u << m;
    for (std::uint32_t a = 0; a < full; ++a) {
      const auto net = logic::buildGreaterThanConst(a, m);
      const std::size_t steps = logic::scheduleForSl(net.xag).sensingSteps;
      total += static_cast<double>(steps);
      worst = std::max(worst, steps);
    }
    const double avg = total / full;
    t.addRow({std::to_string(m), std::to_string(5 * m), energy::fmt(avg, 1),
              std::to_string(worst),
              energy::fmt(5 * m * energy::cal::kTSlReadNs, 1),
              energy::fmt(avg * energy::cal::kTSlReadNs, 1)});
  }
  std::fputs(t.toString().c_str(), stdout);
  std::puts("Constant folding (the paper's logic-synthesis step [30]) cuts"
            " the sensing steps per conversion ~3.5x on average.\n");
}

void ablationCorrelation() {
  std::puts("(c) correlation control: correlated vs independent inputs");
  energy::Table t({"op", "inputs", "measured", "expected", "abs err"});
  sc::Mt19937Source src(3);
  const double px = 0.3, py = 0.6;
  {
    const auto [x, y] = sc::makeCorrelatedPair(src, px, py, 8, 8192);
    const double v = sc::scAbsSub(x, y).value();
    t.addRow({"XOR |x-y|", "correlated", energy::fmt(v, 3),
              energy::fmt(std::abs(px - py), 3),
              energy::fmt(std::abs(v - std::abs(px - py)), 3)});
  }
  {
    const auto [x, y] = sc::makeIndependentPair(src, px, py, 8, 8192);
    const double v = sc::scAbsSub(x, y).value();
    t.addRow({"XOR |x-y|", "independent", energy::fmt(v, 3),
              energy::fmt(std::abs(px - py), 3),
              energy::fmt(std::abs(v - std::abs(px - py)), 3)});
  }
  {
    const auto [x, y] = sc::makeCorrelatedPair(src, px, py, 8, 8192);
    const double v = sc::cordivDivide(x, y).value();
    t.addRow({"CORDIV x/y", "correlated", energy::fmt(v, 3),
              energy::fmt(px / py, 3), energy::fmt(std::abs(v - px / py), 3)});
  }
  {
    const auto [x, y] = sc::makeIndependentPair(src, px, py, 8, 8192);
    const double v = sc::cordivDivide(x, y).value();
    t.addRow({"CORDIV x/y", "independent", energy::fmt(v, 3),
              energy::fmt(px / py, 3), energy::fmt(std::abs(v - px / py), 3)});
  }
  std::fputs(t.toString().c_str(), stdout);
  std::puts("Prior in-memory SC designs lack correlation control (Sec. II-C);"
            " without it XOR/CORDIV are useless.\n");
}

void ablationSegmentSize() {
  std::puts("(d) IMSNG segment size M: SBS value RMSE at N = 1024");
  energy::Table t({"M", "RMSE", "quantization floor 1/(2^M*sqrt(12))"});
  for (const int m : {4, 5, 6, 7, 8, 9, 10}) {
    core::AcceleratorConfig cfg;
    cfg.streamLength = 1024;
    cfg.mBits = m;
    cfg.device = reram::DeviceParams::ideal();
    cfg.seed = 100 + static_cast<std::uint64_t>(m);
    core::Accelerator acc(cfg);
    double se = 0;
    constexpr int kReps = 300;
    std::mt19937_64 eng(m);
    std::uniform_real_distribution<double> unit(0, 1);
    for (int r = 0; r < kReps; ++r) {
      const double p = unit(eng);
      const double v = acc.encodeProb(p).value();
      se += (v - p) * (v - p);
    }
    t.addRow({std::to_string(m), energy::fmt(std::sqrt(se / kReps), 4),
              energy::fmt(1.0 / ((1 << m) * std::sqrt(12.0)), 4)});
  }
  std::fputs(t.toString().c_str(), stdout);
  std::puts("Beyond M ~ 8 the binomial sampling noise of N dominates the"
            " quantization floor (diminishing returns, matches Table I).\n");
}

void ablationWriteTraffic() {
  std::puts("(e) IMSNG-naive vs IMSNG-opt: write traffic per 1000 conversions");
  energy::Table t({"variant", "row writes", "endurance cycles on output row",
                   "energy (nJ)"});
  for (const auto variant : {core::ImsngConfig::Variant::Naive,
                             core::ImsngConfig::Variant::Opt}) {
    core::AcceleratorConfig cfg;
    cfg.streamLength = 256;
    cfg.device = reram::DeviceParams::ideal();
    cfg.imsngVariant = variant;
    core::Accelerator acc(cfg);
    acc.encodeProb(0.5);
    acc.resetEvents();
    for (int i = 0; i < 1000; ++i) acc.encodeProbCorrelated(0.5);
    const auto& ev = acc.events();
    const auto cost = energy::CostModel(256).cost(ev);
    t.addRow({variant == core::ImsngConfig::Variant::Naive ? "naive" : "opt",
              std::to_string(ev.rowWrites),
              std::to_string(acc.array().rowWriteCycles(0)),
              energy::fmt(cost.totalEnergyNJ(), 1)});
  }
  std::fputs(t.toString().c_str(), stdout);
  std::puts("Intermediate writes both burn energy and consume the limited"
            " ReRAM write endurance (Sec. II-A) - the motivation for the"
            " latch-based IMSNG-opt.");
}

void ablationPipelining() {
  std::puts("\n(f) mat-level pipelining: SNG array count vs throughput"
            " (discrete-event model, compositing profile, N = 256)");
  energy::Table t({"SNG arrays", "throughput (Melem/s)", "SNG util",
                   "op util", "bottleneck"});
  for (const std::size_t arrays : {1u, 2u, 3u, 4u, 6u}) {
    const auto sim = core::makeScFlowPipeline(arrays, 3.0, 1.0, 256);
    const auto r = sim.run(400);
    t.addRow({std::to_string(arrays),
              energy::fmt(r.throughputElemsPerSec / 1e6, 2),
              energy::fmt(r.utilization[0], 2), energy::fmt(r.utilization[1], 2),
              sim.stages()[r.bottleneckStage].name});
  }
  std::fputs(t.toString().c_str(), stdout);
  std::puts("Throughput scales with SNG arrays until the single op array"
            " saturates - the quantitative form of Sec. III's \"multiple"
            " arrays to parallelize and pipeline\".");
}

void ablationScrimp() {
  std::puts("\n(g) IMSNG vs write-based SBS generation (SCRIMP [13] class)");
  energy::Table t({"metric", "IMSNG-opt", "SCRIMP-style"});
  // Accuracy over random targets at N = 256.
  std::mt19937_64 eng(2);
  std::uniform_real_distribution<double> unit(0, 1);
  double mseI = 0, mseS = 0;
  constexpr int kSamples = 400;
  core::AcceleratorConfig cfg;
  cfg.streamLength = 256;
  cfg.device = reram::DeviceParams::ideal();
  core::Accelerator acc(cfg);
  reram::CrossbarArray sArr(4, 256, reram::DeviceParams::ideal());
  reram::ScrimpSng scrimp(sArr);
  for (int i = 0; i < kSamples; ++i) {
    const double p = unit(eng);
    const double vi = acc.encodeProb(p).value();
    const double vs = scrimp.generateProb(p, 0).value();
    mseI += (vi - p) * (vi - p);
    mseS += (vs - p) * (vs - p);
  }
  t.addRow({"SBS MSE (%)", energy::fmt(mseI / kSamples * 100, 3),
            energy::fmt(mseS / kSamples * 100, 3)});
  // Cost per conversion.
  t.addRow({"cell writes / conversion", "0 (read-based)", "~N/2 (every bit)"});
  t.addRow({"conversion latency (ns)", energy::fmt(40 * energy::cal::kTSlReadNs, 1),
            energy::fmt(energy::cal::kTWriteNs, 1) + " (+pulse setup)"});
  t.addRow({"correlation control", "yes (shared planes)", "no"});
  std::fputs(t.toString().c_str(), stdout);
  std::puts("Write-based generation burns endurance on every stream and"
            " cannot produce the correlated inputs XOR/CORDIV need"
            " (Sec. II-C).");
}

void ablationProtectionCost() {
  std::puts("\n(h) protecting binary CIM vs relying on SC robustness");
  reram::DeviceParams dev;
  dev.sigmaLrs = 0.15;
  dev.sigmaHrs = 1.4;
  reram::FaultModel fm(dev, 21, 30000);
  energy::Table t({"engine", "mul errors / 300", "gate cycles / mul"});
  for (const auto prot : {bincim::MagicEngine::Protection::None,
                          bincim::MagicEngine::Protection::Dmr}) {
    bincim::MagicEngine eng2(&fm, 23);
    eng2.setProtection(prot);
    bincim::AritPim pim(eng2);
    int errors = 0;
    for (int i = 0; i < 300; ++i) {
      if (pim.mul(200, 200, 8) != 40000u) ++errors;
    }
    t.addRow({prot == bincim::MagicEngine::Protection::None ? "unprotected"
                                                            : "DMR + retry",
              std::to_string(errors),
              energy::fmt(static_cast<double>(eng2.gateOps()) / 300.0, 0)});
  }
  std::fputs(t.toString().c_str(), stdout);
  std::puts("Binary CIM needs ~2x gate cycles to tolerate the same devices"
            " that SC absorbs for free (Sec. IV-C / [41]).");
}

void ablationArea() {
  std::puts("\n(i) area shares: the paper's 80%-SNG claim and the"
            " 'minimal periphery changes' claim");
  energy::Table t({"CMOS lane", "SNG GE", "logic GE", "counter GE",
                   "SNG share"});
  for (const auto sng : {energy::CmosSng::Lfsr, energy::CmosSng::Sobol}) {
    const auto a = energy::cmosScArea(sng, energy::ScOpKind::Multiplication, 256);
    t.addRow({energy::cmosSngName(sng), energy::fmt(a.sngGe, 0),
              energy::fmt(a.logicGe, 0), energy::fmt(a.counterGe, 0),
              energy::fmt(a.sngShare() * 100, 1) + " %"});
  }
  std::fputs(t.toString().c_str(), stdout);
  const auto r = energy::reramPeripheryArea(256);
  std::printf(
      "ReRAM periphery additions per 256-column mat: %.0f GE on a %.0f GE"
      " baseline mat = %.1f %% overhead\n"
      "  of which the 8-bit ADC is %.0f GE - a component 'common in other"
      " CIM designs' (ISAAC [37]); the SC-specific\n  additions (SA"
      " references + feedback drivers) are %.0f GE = %.1f %% - the paper's"
      " 'minimal changes to the memory periphery'.\n",
      r.totalExtraGe(), r.baselineMatGe, r.overheadShare() * 100, r.adcGe,
      r.extraSaRefsGe + r.feedbackGe,
      (r.extraSaRefsGe + r.feedbackGe) / r.baselineMatGe * 100);
}

}  // namespace

int main() {
  std::puts("Ablation studies\n================\n");
  ablationMajVsMux();
  ablationFolding();
  ablationCorrelation();
  ablationSegmentSize();
  ablationWriteTraffic();
  ablationPipelining();
  ablationScrimp();
  ablationProtectionCost();
  ablationArea();
  return 0;
}
