// Sharded MatGroup fan-out under measurement: the multi-process
// ShardCoordinator (fork()ed workers over socketpairs, byte-exact wire
// codec) against the one-shot runner oracle, at shard counts {1, 2, 4}.
//
// The headline numbers here are CONTRACTS, not speedups: on a 1-CPU host
// the fan-out buys resilience and address-space isolation, not wall-clock.
// What the JSON gates (scripts/compare_bench.py --require-true in CI) is
// the determinism theorem of docs/SHARDING.md — merged output bytes and
// cost ledgers are a pure function of the request, identical for every
// shard count and equal to one-shot apps::runApp.
//
// Phases:
//   0. codec check    — every traffic request encode/decode round-trips
//                       bit-exactly; mean wire frame size recorded
//   1. solo oracle    — apps::runAppDetailed on the matching lane fleet
//                       (lanes=4, threads=1, rowsPerTile=4)
//   2. shard sweep    — subprocess coordinators with 1, 2, 4 workers;
//                       every output byte-compared to the oracle
//   3. sharded daemon — AcceleratorService with shards=2; outputs
//                       byte-compared to the oracle again
//   4. chaos recovery — supervised 2-shard fabric under a ShardFaultPlan
//                       firing every site (drop/crash/hang/garbage) on a
//                       quarter of all dispatches; every recovered output
//                       byte-compared to the oracle, recovery latency and
//                       retry counts recorded, a hard per-request wall
//                       bound proving "error, never hang"
//   5. degraded mode  — shard 0's worker SIGKILLed with zero retry budget;
//                       its frames re-dispatch to the survivor and the
//                       bytes must STILL equal the oracle
//
// Results land in BENCH_shard.json (schema: docs/BENCHMARKS.md).  The
// recovery booleans are CI contracts (compare_bench.py --require-true);
// the recovery-latency percentiles measure the host and are informational.
//
// Usage: bench_shard [size] [rounds]   (default 64 4; CI smoke uses 32 2)
#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/runner.hpp"
#include "img/synth.hpp"
#include "service/accelerator_service.hpp"
#include "shard/coordinator.hpp"
#include "shard/fault_plan.hpp"
#include "shard/supervisor.hpp"
#include "shard/transport.hpp"
#include "shard/wire.hpp"

namespace {

using namespace aimsc;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One request shape in the traffic mix (client-owned frames).
struct TrafficItem {
  apps::AppKind app;
  core::DesignKind design;
  std::size_t size = 64;
  std::uint64_t seed = 0;
  reliability::FaultPlan faults{};
  std::size_t replicas = 1;

  apps::CompositingScene compositing;
  apps::MattingScene matting;
  img::Image src;
  std::size_t outWidth = 0, outHeight = 0;
};

service::Request requestFor(const TrafficItem& it, img::Image& out) {
  service::Request q;
  q.app = it.app;
  q.design = it.design;
  q.streamLength = 128;
  q.seed = it.seed;
  q.faults = it.faults;
  q.redundancy.replicas = it.replicas;
  switch (it.app) {
    case apps::AppKind::Compositing:
      q.src = it.compositing.background;
      q.aux1 = it.compositing.foreground;
      q.aux2 = it.compositing.alpha;
      break;
    case apps::AppKind::Matting:
      q.src = it.matting.composite;
      q.aux1 = it.matting.background;
      q.aux2 = it.matting.foreground;
      break;
    default:
      q.src = it.src;
      break;
  }
  q.out = out;
  return q;
}

/// Mixed traffic: all substrate families, including the paper's faulty
/// device corner with triple-modular redundancy riding the wire.
std::vector<TrafficItem> makeTraffic(std::size_t size) {
  std::vector<TrafficItem> items;
  auto add = [&](apps::AppKind app, core::DesignKind design,
                 std::uint64_t seed) -> TrafficItem& {
    TrafficItem it;
    it.app = app;
    it.design = design;
    it.size = size;
    it.seed = seed;
    items.push_back(std::move(it));
    return items.back();
  };
  add(apps::AppKind::Gamma, core::DesignKind::SwScLfsr, 201);
  add(apps::AppKind::Morphology, core::DesignKind::SwScSimd, 202);
  add(apps::AppKind::Compositing, core::DesignKind::ReramSc, 203);
  {
    auto& faulty = add(apps::AppKind::Compositing, core::DesignKind::ReramSc,
                       204);
    faulty.faults = reliability::FaultPlan::deviceOnly(
        apps::defaultFaultyDevice(), 2000);
    faulty.replicas = 3;
  }
  add(apps::AppKind::Matting, core::DesignKind::SwScSobol, 205);
  add(apps::AppKind::Filters, core::DesignKind::BinaryCim, 206);
  for (auto& it : items) {
    it.outWidth = it.size;
    it.outHeight = it.size;
    switch (it.app) {
      case apps::AppKind::Compositing:
        it.compositing = apps::makeCompositingScene(it.size, it.size, it.seed);
        break;
      case apps::AppKind::Matting:
        it.matting = apps::makeMattingScene(it.size, it.size, it.seed);
        break;
      default:
        it.src = img::naturalScene(it.size, it.size, it.seed ^ 0xb111);
        break;
    }
  }
  return items;
}

/// The one-shot oracle on the matching lane fleet.
apps::RunResult oracleRun(const TrafficItem& it) {
  apps::RunConfig cfg;
  cfg.width = it.size;
  cfg.height = it.size;
  cfg.streamLength = 128;
  cfg.seed = it.seed;
  cfg.faults = it.faults;
  cfg.redundancy.replicas = it.replicas;
  apps::ParallelConfig par;
  par.lanes = 4;
  par.threads = 1;  // forces the lane-fleet path on every design
  par.rowsPerTile = 4;
  return apps::runAppDetailed(it.app, it.design, cfg, par);
}

/// Tight budgets for the chaos phases: an injected hang costs one 250ms
/// recv deadline, not the 5s default, and backoffs stay in single-digit ms.
shard::ChannelDeadlines chaosDeadlines() {
  shard::ChannelDeadlines d;
  d.connect = std::chrono::milliseconds(2000);
  d.send = std::chrono::milliseconds(1000);
  d.recv = std::chrono::milliseconds(250);
  return d;
}

shard::RetryPolicy chaosRetry() {
  shard::RetryPolicy rp;
  rp.initialBackoff = std::chrono::milliseconds(1);
  rp.maxBackoff = std::chrono::milliseconds(8);
  // maxRespawns is a LIFETIME budget per shard; sustained chaos burns one
  // respawn per injected fault, so the default (8) would declare shards
  // dead mid-sweep.  The sweep measures recovery, not the death budget.
  rp.maxRespawns = 100000;
  return rp;
}

/// Nearest-rank percentile over an unsorted sample (0 when empty).
double percentileMs(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sample.size() - 1) + 0.5);
  return sample[std::min(rank, sample.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const long sizeArg = argc > 1 ? std::atol(argv[1]) : 64;
  const long roundsArg = argc > 2 ? std::atol(argv[2]) : 4;
  if (sizeArg < 8 || sizeArg > 1024 || roundsArg < 1 || roundsArg > 1000) {
    std::fprintf(stderr,
                 "usage: bench_shard [size in 8..1024] [rounds in 1..1000]\n");
    return 1;
  }
  const auto size = static_cast<std::size_t>(sizeArg);
  const auto rounds = static_cast<std::size_t>(roundsArg);
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kRowsPerTile = 4;

  std::vector<TrafficItem> items = makeTraffic(size);
  const std::size_t total = items.size() * rounds;
  std::printf(
      "Shard bench: %zu traffic items x %zu rounds at %zux%zu (N=128), "
      "fleet %zux%zu\n\n",
      items.size(), rounds, size, size, kLanes, kRowsPerTile);

  // --- phase 0: wire codec round-trip on the real traffic ------------------
  bool codecOk = true;
  std::size_t wireBytes = 0;
  for (const auto& it : items) {
    img::Image out(it.outWidth, it.outHeight);
    const service::Request q = requestFor(it, out);
    shard::TileAssignment assign;
    assign.laneSeedBase = q.seed;
    assign.laneStride = 2;
    assign.laneBegin = 1;
    assign.rowEnd = static_cast<std::uint32_t>(it.outHeight);
    const shard::WireRequest wq = shard::makeWireRequest(
        q, /*tenant=*/7, /*seedNamespace=*/0, q.seed, kLanes, kRowsPerTile,
        assign);
    const std::vector<std::uint8_t> bytes = shard::encodeRequest(wq);
    wireBytes += bytes.size();
    if (!(shard::decodeRequest(bytes) == wq)) codecOk = false;
  }
  const std::size_t wireBytesMean = wireBytes / items.size();
  std::printf("  codec round-trip: %s (mean request frame %zu bytes)\n",
              codecOk ? "bit-exact" : "MISMATCH (BUG)", wireBytesMean);

  // --- phase 1: solo one-shot oracle ---------------------------------------
  std::vector<apps::RunResult> oracle;
  oracle.reserve(items.size());
  Clock::time_point t0 = Clock::now();
  for (const auto& it : items) oracle.push_back(oracleRun(it));
  const double soloSecs = secondsSince(t0);
  std::printf("  solo one-shot oracle: %zu requests in %.2fs\n", items.size(),
              soloSecs);

  // --- phase 2: subprocess shard sweep -------------------------------------
  const std::size_t shardCounts[] = {1, 2, 4};
  double shardRps[3] = {0, 0, 0};
  bool matchesOneShot = codecOk;
  bool crossShardIdentical = true;
  std::vector<std::vector<std::uint8_t>> firstSweepBytes(items.size());
  for (std::size_t si = 0; si < 3; ++si) {
    const std::size_t shards = shardCounts[si];
    shard::ShardCoordinator coord(
        shard::makeShardChannels(shard::ShardTransportKind::Subprocess,
                                 shards),
        kLanes, kRowsPerTile);
    t0 = Clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        img::Image out(items[i].outWidth, items[i].outHeight);
        const service::Request q = requestFor(items[i], out);
        coord.runReplicated(/*tenant=*/1, q, /*seedNamespace=*/0, q.seed);
        if (r == 0) {
          if (out.pixels() != oracle[i].output.pixels()) {
            matchesOneShot = false;
          }
          if (si == 0) {
            firstSweepBytes[i] = out.pixels();
          } else if (out.pixels() != firstSweepBytes[i]) {
            crossShardIdentical = false;
          }
        }
      }
    }
    const double secs = secondsSince(t0);
    shardRps[si] = static_cast<double>(total) / secs;
    std::printf("  %zu subprocess shard%s: %zu requests in %.2fs (%.2f "
                "req/s)\n",
                shards, shards == 1 ? " " : "s", total, secs, shardRps[si]);
  }
  std::printf("  shard sweep vs one-shot bytes: %s; across shard counts: "
              "%s\n",
              matchesOneShot ? "identical" : "DIFFER (BUG)",
              crossShardIdentical ? "identical" : "DIFFER (BUG)");

  // --- phase 3: sharded daemon (shards=2 behind the request queue) ---------
  bool serviceMatches = true;
  double serviceRps = 0.0;
  {
    service::ServiceConfig sc;
    sc.lanes = kLanes;
    sc.rowsPerTile = kRowsPerTile;
    sc.maxBatch = 4;
    sc.shards = 2;
    sc.shardTransport = shard::ShardTransportKind::Subprocess;
    service::AcceleratorService svc(sc);
    std::vector<img::Image> outs;
    outs.reserve(total);
    for (std::size_t r = 0; r < rounds; ++r) {
      for (const auto& it : items) outs.emplace_back(it.outWidth, it.outHeight);
    }
    t0 = Clock::now();
    std::vector<service::Ticket> tickets;
    tickets.reserve(total);
    for (std::size_t g = 0; g < total; ++g) {
      tickets.push_back(
          svc.submit(1, requestFor(items[g % items.size()], outs[g])));
    }
    for (const service::Ticket& t : tickets) svc.wait(t);
    const double secs = secondsSince(t0);
    serviceRps = static_cast<double>(total) / secs;
    for (std::size_t g = 0; g < total; ++g) {
      if (outs[g].pixels() != oracle[g % items.size()].output.pixels()) {
        serviceMatches = false;
      }
    }
    std::printf("  sharded daemon (2 shards): %zu requests in %.2fs (%.2f "
                "req/s), bytes %s\n",
                total, secs, serviceRps,
                serviceMatches ? "identical" : "DIFFER (BUG)");
  }

  // --- phase 4: chaos recovery (every fault site on 25% of dispatches) -----
  // With five sites at 0.25 each, ~76% of original dispatches suffer a
  // drop/crash/hang/garbage fault; the supervisor's deadline + retry +
  // respawn machinery must still deliver oracle bytes for every request,
  // and — the "error, never hang" contract — every request must complete
  // inside a hard wall bound derived from the budgets (30s here dwarfs
  // maxAttempts * (recv deadline + backoff) + execution).
  bool recoveredIdentical = true;
  bool noHang = true;
  std::uint64_t chaosRetries = 0, chaosRespawns = 0, chaosFaults = 0;
  double recoveryP50 = 0.0, recoveryP95 = 0.0;
  {
    shard::ShardCoordinator coord(
        shard::makeSupervisedFabric(shard::ShardTransportKind::Subprocess, 2,
                                    chaosDeadlines(), chaosRetry(),
                                    shard::ShardFaultPlan::uniform(0xc4a05,
                                                                   0.25)),
        kLanes, kRowsPerTile);
    std::vector<double> recoveryMs;  // latency of requests that recovered
    t0 = Clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        img::Image out(items[i].outWidth, items[i].outHeight);
        const service::Request q = requestFor(items[i], out);
        const std::uint64_t retriesBefore = coord.fabric().stats().retries;
        const Clock::time_point q0 = Clock::now();
        coord.runReplicated(/*tenant=*/1, q, /*seedNamespace=*/0, q.seed);
        const double ms = secondsSince(q0) * 1e3;
        if (ms > 30000.0) noHang = false;
        if (coord.fabric().stats().retries > retriesBefore) {
          recoveryMs.push_back(ms);
        }
        if (out.pixels() != oracle[i].output.pixels()) {
          recoveredIdentical = false;
        }
      }
    }
    const double secs = secondsSince(t0);
    const shard::FabricStats& fs = coord.fabric().stats();
    chaosRetries = fs.retries;
    chaosRespawns = fs.respawns;
    chaosFaults = fs.faultsInjected;
    if (fs.deadShards != 0) recoveredIdentical = false;  // budget too small
    recoveryP50 = percentileMs(recoveryMs, 0.50);
    recoveryP95 = percentileMs(recoveryMs, 0.95);
    std::printf(
        "  chaos sweep (2 shards, all sites @ 0.25): %zu requests in %.2fs; "
        "%llu faults, %llu retries, %llu respawns; recovered latency "
        "p50 %.1fms p95 %.1fms; bytes %s, %s\n",
        total, secs, static_cast<unsigned long long>(chaosFaults),
        static_cast<unsigned long long>(chaosRetries),
        static_cast<unsigned long long>(chaosRespawns), recoveryP50,
        recoveryP95, recoveredIdentical ? "identical" : "DIFFER (BUG)",
        noHang ? "no hangs" : "HANG (BUG)");
  }

  // --- phase 5: degraded mode (dead shard's frames served by survivor) -----
  bool degradedIdentical = true;
  {
    shard::RetryPolicy rp = chaosRetry();
    rp.maxAttempts = 1;   // first failure -> dead
    rp.maxRespawns = 0;
    shard::ShardCoordinator coord(
        shard::makeSupervisedFabric(shard::ShardTransportKind::Subprocess, 2,
                                    chaosDeadlines(), rp),
        kLanes, kRowsPerTile);
    const int pid = coord.fabric().workerPid(0);
    if (pid > 0) ::kill(pid, SIGKILL);
    for (std::size_t i = 0; i < items.size(); ++i) {
      img::Image out(items[i].outWidth, items[i].outHeight);
      const service::Request q = requestFor(items[i], out);
      coord.runReplicated(/*tenant=*/1, q, /*seedNamespace=*/0, q.seed);
      if (out.pixels() != oracle[i].output.pixels()) degradedIdentical = false;
    }
    if (coord.fabric().stats().deadShards != 1 ||
        coord.reassignedDispatches() == 0) {
      degradedIdentical = false;  // the scenario itself failed to happen
    }
    std::printf("  degraded sweep (shard 0 dead, survivor serves both): %zu "
                "requests, %llu re-dispatches, bytes %s\n",
                items.size(),
                static_cast<unsigned long long>(coord.reassignedDispatches()),
                degradedIdentical ? "identical" : "DIFFER (BUG)");
  }

  const bool deterministic = codecOk && crossShardIdentical &&
                             matchesOneShot && serviceMatches &&
                             recoveredIdentical && degradedIdentical && noHang;
  FILE* f = std::fopen("BENCH_shard.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"width\": %zu,\n"
                 "  \"height\": %zu,\n"
                 "  \"stream_length\": 128,\n"
                 "  \"lanes\": %zu,\n"
                 "  \"rows_per_tile\": %zu,\n"
                 "  \"rounds\": %zu,\n"
                 "  \"requests\": %zu,\n"
                 "  \"wire_request_bytes_mean\": %zu,\n"
                 "  \"codec_round_trip_ok\": %s,\n"
                 "  \"shard1_rps\": %.3f,\n"
                 "  \"shard2_rps\": %.3f,\n"
                 "  \"shard4_rps\": %.3f,\n"
                 "  \"service_sharded_rps\": %.3f,\n"
                 "  \"deterministic_across_shards\": %s,\n"
                 "  \"matches_one_shot\": %s,\n"
                 "  \"service_sharded_matches_one_shot\": %s,\n"
                 "  \"recovered_byte_identical\": %s,\n"
                 "  \"degraded_byte_identical\": %s,\n"
                 "  \"no_hang_under_chaos\": %s,\n"
                 "  \"chaos_faults_injected\": %llu,\n"
                 "  \"chaos_retries\": %llu,\n"
                 "  \"chaos_respawns\": %llu,\n"
                 "  \"recovery_latency_ms_p50\": %.3f,\n"
                 "  \"recovery_latency_ms_p95\": %.3f\n"
                 "}\n",
                 size, size, kLanes, kRowsPerTile, rounds, total,
                 wireBytesMean, codecOk ? "true" : "false", shardRps[0],
                 shardRps[1], shardRps[2], serviceRps,
                 (crossShardIdentical && matchesOneShot) ? "true" : "false",
                 matchesOneShot ? "true" : "false",
                 serviceMatches ? "true" : "false",
                 recoveredIdentical ? "true" : "false",
                 degradedIdentical ? "true" : "false",
                 noHang ? "true" : "false",
                 static_cast<unsigned long long>(chaosFaults),
                 static_cast<unsigned long long>(chaosRetries),
                 static_cast<unsigned long long>(chaosRespawns), recoveryP50,
                 recoveryP95);
    std::fclose(f);
    std::puts("  wrote BENCH_shard.json");
  }
  return deterministic ? 0 : 1;
}
