// Reproduces paper Table II: MSE(%) of the SC arithmetic operations under
// four SNG randomness sources (IMSNG M=8, software MT19937, 8-bit LFSR,
// 8-bit Sobol) across stream lengths N in {32..512} — the seven paper ops
// plus the Bernstein selection network (the ScBackend vocabulary's
// polynomial-synthesis op, measured on a degree-3 gamma curve).
//
// Correlation protocol follows Sec. II-B: multiplication and the additions
// use independent streams; subtraction, division, min and max use
// correlated (shared-RNG) streams.  Division uses CORDIV with px <= py;
// Bernstein draws its x copies and coefficient streams as successive
// outputs of the shared generator (mutually independent phases).
//
// Usage: bench_table2_ops_mse [samples]   (default 4000; paper used 1e6)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <random>

#include "energy/report.hpp"
#include "sc/bernstein.hpp"
#include "sc/cordiv.hpp"
#include "sc/correlation.hpp"
#include "sc/ops.hpp"
#include "sc/rng.hpp"
#include "sc/sng.hpp"

namespace {

using namespace aimsc;

enum class Op { Mul, ScaledAdd, ApproxAdd, AbsSub, Div, Min, Max, Bernstein };

const char* opName(Op op) {
  switch (op) {
    case Op::Mul: return "Multiplication";
    case Op::ScaledAdd: return "Scaled Addition";
    case Op::ApproxAdd: return "Approx. Addition";
    case Op::AbsSub: return "Abs. Subtraction";
    case Op::Div: return "Division";
    case Op::Min: return "Minimum";
    case Op::Max: return "Maximum";
    case Op::Bernstein: return "Bernstein (deg 3)";
  }
  return "?";
}

enum class Source { Imsng, Software, Lfsr, Sobol };

const char* sourceName(Source s) {
  switch (s) {
    case Source::Imsng: return "IMSNG (M=8)";
    case Source::Software: return "Software (MT19937)";
    case Source::Lfsr: return "PRNG (LFSR)";
    case Source::Sobol: return "QRNG (Sobol)";
  }
  return "?";
}

/// Source pair for one operation: primary (and an independent secondary for
/// uncorrelated streams; Sobol uses another dimension, LFSR another phase).
/// reseed(s) refreshes the primary's randomness for sample s: TRNG planes
/// and software RNGs draw fresh randomness per conversion, while the
/// hardware LFSR/Sobol generators restart from their fixed seed (that *is*
/// the CMOS shared-RNG correlation protocol).
struct SourcePair {
  std::unique_ptr<sc::RandomSource> a;
  std::unique_ptr<sc::RandomSource> b;
  std::unique_ptr<sc::RandomSource> c;  // select streams etc.
  std::function<void(int)> reseed = [](int) {};
};

SourcePair makeSources(Source s, std::uint64_t seed) {
  SourcePair p;
  switch (s) {
    case Source::Imsng: {
      auto* a = new sc::TrngSource(seed);
      p.a.reset(a);
      p.b = std::make_unique<sc::TrngSource>(seed ^ 0xabcdef);
      p.c = std::make_unique<sc::TrngSource>(seed ^ 0x123456);
      p.reseed = [a, seed](int sample) {
        *a = sc::TrngSource(seed + 0x9e3779b9u * (sample + 1));
      };
      break;
    }
    case Source::Software: {
      auto* a = new sc::Mt19937Source(seed);
      p.a.reset(a);
      p.b = std::make_unique<sc::Mt19937Source>(seed ^ 0xabcdef);
      p.c = std::make_unique<sc::Mt19937Source>(seed ^ 0x123456);
      p.reseed = [a, seed](int sample) {
        *a = sc::Mt19937Source(seed + 0x9e3779b9u * (sample + 1));
      };
      break;
    }
    case Source::Lfsr:
      p.a = std::make_unique<sc::Lfsr>(
          sc::Lfsr::paper8Bit(static_cast<std::uint32_t>(seed % 254 + 1)));
      p.b = std::make_unique<sc::Lfsr>(
          sc::Lfsr::paper8Bit(static_cast<std::uint32_t>((seed >> 9) % 254 + 1)));
      p.c = std::make_unique<sc::Lfsr>(
          sc::Lfsr::paper8Bit(static_cast<std::uint32_t>((seed >> 17) % 254 + 1)));
      break;
    case Source::Sobol:
      p.a = std::make_unique<sc::Sobol>(0, 1 + (seed & 0x3f));
      p.b = std::make_unique<sc::Sobol>(1, 1 + (seed & 0x3f));
      p.c = std::make_unique<sc::Sobol>(2, 1 + (seed & 0x3f));
      break;
  }
  return p;
}

/// The \p j-th Bernstein coefficient source: a seed/dimension space
/// disjoint from the a/b/c generators of `makeSources`, so coefficient
/// streams stay independent of the x copies (the selection network's only
/// cross-family requirement).
std::unique_ptr<sc::RandomSource> makeCoeffSource(Source s, std::uint64_t seed,
                                                  std::uint32_t j) {
  switch (s) {
    case Source::Imsng:
      return std::make_unique<sc::TrngSource>(seed + 0x9e3779b9u * (j + 7));
    case Source::Software:
      return std::make_unique<sc::Mt19937Source>(seed + 0x9e3779b9u * (j + 7));
    case Source::Lfsr:
      // Phases offset far from the a/b/c seeds (seed, seed>>9, seed>>17).
      return std::make_unique<sc::Lfsr>(sc::Lfsr::paper8Bit(
          static_cast<std::uint32_t>(((seed >> 25) + 37 * (j + 1)) % 254 + 1)));
    case Source::Sobol:
      // Dimensions 3..6: disjoint from the copies' dimensions 0/1/2.
      return std::make_unique<sc::Sobol>(static_cast<int>(3 + j),
                                         1 + (seed & 0x3f));
  }
  return nullptr;
}

double opMsePercent(Op op, Source srcKind, std::size_t n, int samples) {
  constexpr int kBits = 8;
  std::mt19937_64 eng(0x7ab1e2 + static_cast<std::uint64_t>(op) * 131 +
                      static_cast<std::uint64_t>(srcKind) * 17 + n);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  SourcePair src = makeSources(srcKind, 0x5eed + n);

  double acc = 0.0;
  for (int s = 0; s < samples; ++s) {
    double px = unit(eng);
    double py = unit(eng);
    double expected = 0.0;
    sc::Bitstream out;
    switch (op) {
      case Op::Mul: {
        const sc::Bitstream x = sc::generateSbsFromProb(*src.a, px, kBits, n);
        const sc::Bitstream y = sc::generateSbsFromProb(*src.b, py, kBits, n);
        out = sc::scMultiply(x, y);
        expected = px * py;
        break;
      }
      case Op::ScaledAdd: {
        const sc::Bitstream x = sc::generateSbsFromProb(*src.a, px, kBits, n);
        const sc::Bitstream y = sc::generateSbsFromProb(*src.b, py, kBits, n);
        const sc::Bitstream h = sc::generateSbsFromProb(*src.c, 0.5, kBits, n);
        out = sc::scScaledAddMaj(x, y, h);
        expected = (px + py) / 2;
        break;
      }
      case Op::ApproxAdd: {
        px /= 2;  // paper: inputs in [0, 0.5] so the sum stays in range
        py /= 2;
        const sc::Bitstream x = sc::generateSbsFromProb(*src.a, px, kBits, n);
        const sc::Bitstream y = sc::generateSbsFromProb(*src.b, py, kBits, n);
        out = sc::scAddOr(x, y);
        expected = px + py;  // the MSE includes the px*py approximation gap
        break;
      }
      case Op::AbsSub: {
        src.reseed(s);
        src.a->reset();
        const sc::Bitstream x = sc::generateSbsFromProb(*src.a, px, kBits, n);
        src.a->reset();
        const sc::Bitstream y = sc::generateSbsFromProb(*src.a, py, kBits, n);
        out = sc::scAbsSub(x, y);
        expected = std::abs(px - py);
        break;
      }
      case Op::Div: {
        if (px > py) std::swap(px, py);
        if (py < 0.05) py = 0.05;  // guard degenerate divisors
        src.reseed(s);
        src.a->reset();
        const sc::Bitstream x = sc::generateSbsFromProb(*src.a, px, kBits, n);
        src.a->reset();
        const sc::Bitstream y = sc::generateSbsFromProb(*src.a, py, kBits, n);
        out = sc::cordivDivide(x, y);
        expected = px / py;
        break;
      }
      case Op::Bernstein: {
        // Degree-3 Bernstein form of the gamma curve t^2.2: the three x
        // copies MUST be mutually independent (the per-position ones-count
        // is a Binomial(3, px) sample), so each comes from one of the
        // three independent generators a/b/c — never from successive
        // segments of one generator (an 8-bit LFSR at N >= 255 would wrap
        // into near-identical phases).  Coefficient streams come from a
        // fourth seed/dimension space, disjoint from the copies.
        static const std::vector<double> b = sc::bernsteinCoefficientsOf(
            [](double t) { return std::pow(t, 2.2); }, 3);
        const std::vector<sc::Bitstream> xCopies{
            sc::generateSbsFromProb(*src.a, px, kBits, n),
            sc::generateSbsFromProb(*src.b, px, kBits, n),
            sc::generateSbsFromProb(*src.c, px, kBits, n)};
        std::vector<sc::Bitstream> coeffs;
        for (std::size_t j = 0; j < b.size(); ++j) {
          const auto coeffSrc = makeCoeffSource(
              srcKind, 0xbe57 + n * 131, static_cast<std::uint32_t>(j));
          coeffs.push_back(sc::generateSbsFromProb(*coeffSrc, b[j], kBits, n));
        }
        out = sc::scBernsteinSelect(xCopies, coeffs);
        expected = sc::bernsteinValue(b, px);
        break;
      }
      case Op::Min:
      case Op::Max: {
        src.reseed(s);
        src.a->reset();
        const sc::Bitstream x = sc::generateSbsFromProb(*src.a, px, kBits, n);
        src.a->reset();
        const sc::Bitstream y = sc::generateSbsFromProb(*src.a, py, kBits, n);
        out = op == Op::Min ? sc::scMin(x, y) : sc::scMax(x, y);
        expected = op == Op::Min ? std::min(px, py) : std::max(px, py);
        break;
      }
    }
    const double err = out.value() - expected;
    acc += err * err;
  }
  return acc / samples * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  const int samples = argc > 1 ? std::atoi(argv[1]) : 4000;
  const std::size_t lengths[] = {32, 64, 128, 256, 512};
  const Op ops[] = {Op::Mul, Op::ScaledAdd, Op::ApproxAdd, Op::AbsSub,
                    Op::Div, Op::Min,       Op::Max,       Op::Bernstein};
  const Source sources[] = {Source::Imsng, Source::Software, Source::Lfsr,
                            Source::Sobol};

  std::printf(
      "Table II: MSE(%%) of SC arithmetic operations, M = 8 "
      "(%d samples per cell; paper used 1e6)\n",
      samples);

  for (const Source src : sources) {
    std::printf("\n-- RNG source: %s --\n", sourceName(src));
    energy::Table table({"SC Operation", "N:32", "64", "128", "256", "512"});
    for (const Op op : ops) {
      std::vector<std::string> row{opName(op)};
      for (const std::size_t n : lengths) {
        row.push_back(energy::fmtMsePercent(opMsePercent(op, src, n, samples)));
      }
      table.addRow(row);
    }
    std::fputs(table.toString().c_str(), stdout);
  }

  std::puts(
      "\nPaper reference (Table II, IMSNG columns): Mul 0.473..0.061, "
      "ScaledAdd 0.690..0.062, ApproxAdd 1.548..0.886,\nAbsSub 0.641..0.107, "
      "Div 1.614..0.187, Min 0.572..0.064, Max 0.572..0.077 (N = 32..512).");
  return 0;
}
