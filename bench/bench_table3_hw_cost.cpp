// Reproduces paper Table III: hardware cost (total latency ns / total
// energy nJ) of the CMOS-based and ReRAM-based SC designs at N = 256, plus
// the Sec. IV-B IMSNG-naive vs IMSNG-opt per-conversion comparison.
//
// CMOS rows are the paper's synthesized 45nm numbers (dataset in
// energy/cmos_baseline.*); ReRAM rows are *measured from simulation*: the
// accelerator executes each flow, the event ledger is priced by the
// calibrated cost model (energy/calibration.hpp documents the derivations).
#include <cstdio>

#include "core/accelerator.hpp"
#include "energy/calibration.hpp"
#include "energy/cmos_baseline.hpp"
#include "energy/cost_model.hpp"
#include "energy/report.hpp"

namespace {

using namespace aimsc;

struct Measured {
  double latencyNs;
  double energyNJ;
};

core::AcceleratorConfig reramConfig(core::ImsngConfig::Variant variant) {
  core::AcceleratorConfig cfg;
  cfg.streamLength = 256;
  cfg.device = reram::DeviceParams::ideal();
  cfg.commitSbs = false;  // Table III reports the conversion+op logic
  cfg.imsngVariant = variant;
  return cfg;
}

Measured measureOp(energy::ScOpKind op) {
  core::Accelerator acc(reramConfig(core::ImsngConfig::Variant::Opt));
  const sc::Bitstream y = acc.encodeProb(0.8);
  acc.resetEvents();
  const sc::Bitstream x = acc.encodeProbCorrelated(0.4);
  switch (op) {
    case energy::ScOpKind::Multiplication:
      acc.ops().multiply(x, y);
      break;
    case energy::ScOpKind::ScaledAddition: {
      acc.ops().scaledAdd(x, y, y);
      break;
    }
    case energy::ScOpKind::ApproxAddition:
      acc.ops().addApprox(x, y);
      break;
    case energy::ScOpKind::AbsSubtraction:
      acc.ops().absSub(x, y);
      break;
    case energy::ScOpKind::Division:
      acc.ops().divide(x, y);
      break;
    case energy::ScOpKind::Minimum:
      acc.ops().minimum(x, y);
      break;
    case energy::ScOpKind::Maximum:
      acc.ops().maximum(x, y);
      break;
  }
  const auto cost = energy::CostModel(256).cost(acc.events());
  return {cost.totalLatencyNs(), cost.totalEnergyNJ()};
}

Measured measureConversion(core::ImsngConfig::Variant variant) {
  core::Accelerator acc(reramConfig(variant));
  acc.encodeProb(0.5);
  acc.resetEvents();
  acc.encodeProbCorrelated(0.5);
  const auto cost = energy::CostModel(256).cost(acc.events());
  return {cost.totalLatencyNs(), cost.totalEnergyNJ()};
}

}  // namespace

int main() {
  std::puts("Table III: hardware cost evaluation, N = 256\n");

  const energy::ScOpKind ops[] = {
      energy::ScOpKind::Multiplication, energy::ScOpKind::ScaledAddition,
      energy::ScOpKind::AbsSubtraction, energy::ScOpKind::Division};

  std::puts("CMOS-based design (paper dataset, Synopsys DC 45 nm):");
  energy::Table cmos({"SNG", "SC operation", "Total latency (ns)",
                      "Total energy (nJ)"});
  for (const auto sng : {energy::CmosSng::Lfsr, energy::CmosSng::Sobol}) {
    for (const auto op : ops) {
      const auto c = energy::cmosScCost(sng, op, 256);
      cmos.addRow({energy::cmosSngName(sng), energy::scOpName(op),
                   energy::fmt(c.latencyNs, 2), energy::fmt(c.energyNJ, 2)});
    }
    cmos.addRule();
  }
  std::fputs(cmos.toString().c_str(), stdout);

  std::puts("\nReRAM-based design (measured from the simulator event ledger):");
  energy::Table rr({"SNG", "SC operation", "Total latency (ns)",
                    "Total energy (nJ)", "Paper (ns / nJ)"});
  const char* paperRef[] = {"80.8 / 3.50", "80.8 / 3.50", "81.6 / 3.51",
                            "12544.0 / 4.48"};
  int i = 0;
  for (const auto op : ops) {
    const Measured m = measureOp(op);
    rr.addRow({"IMSNG-opt", energy::scOpName(op), energy::fmt(m.latencyNs, 1),
               energy::fmt(m.energyNJ, 2), paperRef[i++]});
  }
  std::fputs(rr.toString().c_str(), stdout);
  std::printf("S-to-B: 8-bit ADC [ISAAC]: %.2f ns / %.4f nJ per conversion\n",
              energy::cal::kTAdcNs, energy::cal::kEAdcNJ);

  std::puts("\nIMSNG variants, per conversion (paper Sec. IV-B:"
            " naive 395.4 ns / 10.23 nJ, opt 78.2 ns / 3.42 nJ):");
  energy::Table var({"Variant", "Latency (ns)", "Energy (nJ)"});
  const Measured naive = measureConversion(core::ImsngConfig::Variant::Naive);
  const Measured opt = measureConversion(core::ImsngConfig::Variant::Opt);
  var.addRow({"IMSNG-naive", energy::fmt(naive.latencyNs, 1),
              energy::fmt(naive.energyNJ, 2)});
  var.addRow({"IMSNG-opt", energy::fmt(opt.latencyNs, 1),
              energy::fmt(opt.energyNJ, 2)});
  var.addRow({"naive / opt", energy::fmt(naive.latencyNs / opt.latencyNs, 2),
              energy::fmt(naive.energyNJ / opt.energyNJ, 2)});
  std::fputs(var.toString().c_str(), stdout);
  return 0;
}
