// Reliability campaign beyond the paper (ROADMAP "Scenario breadth (c)"):
// sweeps the unified FaultPlan fault classes across fault rate x design x
// app x replica count and quantifies the graceful-degradation story that
// Table IV only samples at one corner.
//
// Four sections, each emitted into BENCH_reliability.json:
//
//  1. Fault-rate sweep — transient flip rate from 0 to 3e-2 on all five
//     substrates (identical per-site rate; SC takes it on stream columns,
//     binary CIM on word bits).  The headline is the QUALITY CROSSOVER:
//     fault-free the exact binary CIM wins, but its SSIM collapses within a
//     decade of fault rate while the SC designs shed 1/N per flip, so the
//     curves cross.
//  2. Mitigation — N-modular redundancy (replicas x vote) and the MAGIC
//     TMR knob at the Table IV default faulty corner, with the op-count
//     overhead each mitigation costs.  Contract: some vote configuration
//     recovers binary CIM gamma above SSIM 80.
//  3. Determinism — the same faulty plan run at 1/2/8 worker threads on
//     every substrate must produce BIT-IDENTICAL images (counter-based
//     fault RNG + lane-pinned tiles).
//  4. Endurance — wear-driven drift vs preloaded write cycles on aged
//     ReRAM-SC devices, with the wear-leveling rotation active; rotation
//     itself must not change a single output bit.
//
// Usage: bench_reliability [imageSize] [runs]
//   (committed baseline: defaults, 32x32 / 2 runs; CI smoke: 16x16 / 1)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "energy/report.hpp"
#include "reliability/fault_plan.hpp"
#include "reliability/redundancy.hpp"

namespace {

using namespace aimsc;

constexpr apps::DesignKind kDesigns[] = {
    apps::DesignKind::SwScLfsr, apps::DesignKind::SwScSobol,
    apps::DesignKind::SwScSimd, apps::DesignKind::ReramSc,
    apps::DesignKind::BinaryCim};

/// JSON-safe snake_case key for a design (designKindName has punctuation).
const char* designKey(apps::DesignKind d) {
  switch (d) {
    case apps::DesignKind::Reference: return "reference";
    case apps::DesignKind::SwScLfsr: return "swsc_lfsr";
    case apps::DesignKind::SwScSobol: return "swsc_sobol";
    case apps::DesignKind::SwScSimd: return "swsc_simd";
    case apps::DesignKind::ReramSc: return "reram_sc";
    case apps::DesignKind::BinaryCim: return "binary_cim";
  }
  return "?";
}

apps::RunConfig baseCfg(std::size_t size, std::uint64_t seed) {
  apps::RunConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.seed = 42 + seed * 1000003;
  return cfg;
}

/// Mean SSIM over `runs` seeds of one (app, design, plan, mitigation) cell.
double meanSsim(apps::AppKind app, apps::DesignKind design, std::size_t size,
                int runs, const reliability::FaultPlan& plan,
                std::size_t replicas = 1,
                core::CimProtection prot = core::CimProtection::None) {
  double acc = 0;
  for (int r = 0; r < runs; ++r) {
    apps::RunConfig cfg = baseCfg(size, r);
    cfg.faults = plan;
    cfg.redundancy.replicas = replicas;
    cfg.bincimProtection = prot;
    acc += apps::runApp(app, design, cfg).ssimPct;
  }
  return acc / runs;
}

// --- section 1: fault-rate sweep -------------------------------------------

struct SweepRow {
  double rate;
  double ssim[std::size(kDesigns)];
};

std::vector<SweepRow> faultRateSweep(apps::AppKind app, std::size_t size,
                                     int runs) {
  const double rates[] = {0.0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2};
  std::vector<SweepRow> rows;
  for (const double rate : rates) {
    SweepRow row{rate, {}};
    reliability::FaultPlan plan;
    plan.transientFlipRate = rate;
    for (std::size_t d = 0; d < std::size(kDesigns); ++d) {
      // Rate 0 is deterministic per seed but still averaged for symmetry.
      row.ssim[d] = meanSsim(app, kDesigns[d], size, runs, plan);
    }
    rows.push_back(row);
  }
  return rows;
}

// --- section 2: mitigation at the Table IV faulty corner --------------------

struct MitigationRow {
  apps::DesignKind design;
  const char* label;
  std::size_t replicas;
  core::CimProtection prot;
  reliability::FaultPlan plan;
  double ssim = 0;
  double opOverhead = 0;  ///< opCount relative to the replicas=1 row
};

std::vector<MitigationRow> mitigationTable(std::size_t size, int runs) {
  reliability::FaultPlan corner =
      reliability::FaultPlan::deviceOnly(apps::defaultFaultyDevice());
  // The SC vote rows run SW-SC at the harshest sweep corner.  They are
  // deliberately reported as DATA, not gated: SC errors are low-variance
  // and largely common-mode across replicas (the expectation shift of the
  // flip channel is the same for every replica even though the flipped
  // sites differ), so image-level votes hover within a point or two of the
  // unmitigated run — redundancy budget is better spent on the CIM side,
  // where the median vote doubles quality and gate-level TMR restores it.
  // That asymmetry IS the graceful-degradation result.
  reliability::FaultPlan harshSc;
  harshSc.transientFlipRate = 3e-2;

  std::vector<MitigationRow> rows = {
      {apps::DesignKind::BinaryCim, "none", 1, core::CimProtection::None,
       corner},
      {apps::DesignKind::BinaryCim, "vote R=3", 3, core::CimProtection::None,
       corner},
      {apps::DesignKind::BinaryCim, "vote R=5", 5, core::CimProtection::None,
       corner},
      {apps::DesignKind::BinaryCim, "TMR", 1, core::CimProtection::Tmr,
       corner},
      {apps::DesignKind::BinaryCim, "TMR + vote R=3", 3,
       core::CimProtection::Tmr, corner},
      {apps::DesignKind::SwScLfsr, "none", 1, core::CimProtection::None,
       harshSc},
      {apps::DesignKind::SwScLfsr, "vote R=3", 3, core::CimProtection::None,
       harshSc},
      {apps::DesignKind::SwScLfsr, "vote R=5", 5, core::CimProtection::None,
       harshSc},
  };

  // Cost reference: unmitigated op count per design (first run's ledger).
  double baseOps[2] = {0, 0};
  for (MitigationRow& row : rows) {
    double ssim = 0;
    double ops = 0;
    for (int r = 0; r < runs; ++r) {
      apps::RunConfig cfg = baseCfg(size, r);
      cfg.faults = row.plan;
      cfg.redundancy.replicas = row.replicas;
      cfg.bincimProtection = row.prot;
      const apps::RunResult res =
          apps::runAppDetailed(apps::AppKind::Gamma, row.design, cfg);
      ssim += res.quality.ssimPct;
      // Cost proxy: the backend op counter where the substrate keeps one
      // (binary CIM gate ledger), sensing steps otherwise (ReRAM-SC).
      ops += res.opCount != 0 ? static_cast<double>(res.opCount)
                              : static_cast<double>(res.events.slReads);
    }
    row.ssim = ssim / runs;
    const std::size_t designIdx =
        row.design == apps::DesignKind::BinaryCim ? 0u : 1u;
    if (baseOps[designIdx] == 0) baseOps[designIdx] = ops;
    row.opOverhead = ops / baseOps[designIdx];
  }
  return rows;
}

// --- section 3: bit-identity of faulty runs across thread counts -----------

bool faultyDeterministic(apps::DesignKind design, std::size_t size) {
  reliability::FaultPlan plan;
  plan.deviceVariability = true;  // exercised on ReRAM-SC / binary CIM
  plan.device = apps::defaultFaultyDevice();
  plan.transientFlipRate = 2e-3;
  plan.stuckAtRate = 0.02;

  apps::RunConfig cfg = baseCfg(size, 0);
  cfg.faults = plan;
  std::vector<std::uint8_t> reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    apps::ParallelConfig par;
    par.lanes = 4;
    par.rowsPerTile = 2;
    par.threads = threads;
    const apps::RunResult res =
        apps::runAppDetailed(apps::AppKind::Gamma, design, cfg, par);
    if (reference.empty()) {
      reference = res.output.pixels();
    } else if (res.output.pixels() != reference) {
      return false;
    }
  }
  return true;
}

// --- section 4: endurance (wear drift on aged devices) ----------------------

struct EnduranceRow {
  double preloadMegaCycles;
  double ssim;
};

std::vector<EnduranceRow> enduranceSweep(std::size_t size, int runs) {
  std::vector<EnduranceRow> rows;
  for (const double mega : {0.0, 5.0, 20.0, 80.0}) {
    reliability::FaultPlan plan;
    plan.wearDriftPerMegaCycle = 1e-3;  // +0.1% flip rate per 1M writes
    plan.wearPreloadCycles = static_cast<std::uint64_t>(mega * 1e6);
    double ssim = 0;
    for (int r = 0; r < runs; ++r) {
      apps::RunConfig cfg = baseCfg(size, r);
      cfg.faults = plan;
      cfg.wearWindowRows = 16;  // rotation active while the device ages
      ssim += apps::runApp(apps::AppKind::Gamma, apps::DesignKind::ReramSc,
                           cfg).ssimPct;
    }
    rows.push_back({mega, ssim / runs});
  }
  return rows;
}

/// Wear-leveling rotation relocates the TRNG planes but must never change
/// WHICH bits any stream holds: clean runs with and without the rotation
/// window have to be bit-identical.
bool wearRotationBitIdentical(std::size_t size) {
  apps::RunConfig plain = baseCfg(size, 0);
  apps::RunConfig rotated = plain;
  rotated.wearWindowRows = 16;
  const img::Image a =
      apps::runAppDetailed(apps::AppKind::Gamma, apps::DesignKind::ReramSc,
                           plain).output;
  const img::Image b =
      apps::runAppDetailed(apps::AppKind::Gamma, apps::DesignKind::ReramSc,
                           rotated).output;
  return a.pixels() == b.pixels();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t size =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 32;
  const int runs = argc > 2 ? std::atoi(argv[2]) : 2;

  std::printf(
      "Reliability campaign: FaultPlan sweep + mitigations (%zux%zu, %d "
      "runs)\n\n",
      size, size, runs);

  // --- 1: crossover sweep ---------------------------------------------------
  const std::vector<SweepRow> sweep =
      faultRateSweep(apps::AppKind::Gamma, size, runs);
  const std::vector<SweepRow> sweepComp =
      faultRateSweep(apps::AppKind::Compositing, size, runs);
  {
    energy::Table t({"flip rate", "SW-SC LFSR", "SW-SC Sobol", "SW-SC SIMD",
                     "ReRAM-SC", "Binary CIM"});
    for (const SweepRow& row : sweep) {
      std::vector<std::string> cells{energy::fmt(row.rate, 4)};
      for (const double s : row.ssim) cells.push_back(energy::fmt(s, 1));
      t.addRow(cells);
    }
    std::printf("Gamma SSIM(%%) vs transient flip rate:\n%s\n",
                t.toString().c_str());
  }

  // Crossover contracts: exact CIM wins fault-free, SC wins at high rates.
  const std::size_t iReram = 3;
  const std::size_t iCim = 4;
  const bool cimBeatsScFaultFree =
      sweep.front().ssim[iCim] > sweep.front().ssim[iReram];
  const bool scBeatsCimAtHighRate =
      sweep.back().ssim[iReram] > sweep.back().ssim[iCim];
  double crossoverRate = -1;
  for (const SweepRow& row : sweep) {
    if (row.ssim[iReram] >= row.ssim[iCim]) {
      crossoverRate = row.rate;
      break;
    }
  }
  std::printf("crossover: CIM ahead fault-free %s, SC ahead at 3e-2 %s, "
              "first SC>=CIM rate %.4g\n\n",
              cimBeatsScFaultFree ? "yes" : "NO",
              scBeatsCimAtHighRate ? "yes" : "NO", crossoverRate);

  // --- 2: mitigation --------------------------------------------------------
  const std::vector<MitigationRow> mit = mitigationTable(size, runs);
  {
    energy::Table t({"Design", "Mitigation", "SSIM", "op overhead"});
    for (const MitigationRow& row : mit) {
      t.addRow({core::designKindName(row.design), row.label,
                energy::fmt(row.ssim, 1),
                energy::fmt(row.opOverhead, 2) + "x"});
    }
    std::printf("Mitigation at the Table IV faulty corner (gamma):\n%s\n",
                t.toString().c_str());
  }
  double cimUnmitigated = 0;
  double cimRecovered = 0;
  bool voteMonotone = true;
  {
    // Rows 0..4 are binary CIM, 5..7 SW-SC (by construction above).  The
    // monotonicity contract covers the CIM vote ladder, where the median
    // vote has heavy-tailed outliers to kill; the SW-SC rows are data (see
    // mitigationTable — their votes sit within noise of the baseline).
    cimUnmitigated = mit[0].ssim;
    for (std::size_t i = 1; i < 5; ++i) {
      cimRecovered = std::max(cimRecovered, mit[i].ssim);
    }
    constexpr double kTol = 0.5;  // averaging noise at small sizes
    voteMonotone = mit[1].ssim + kTol >= mit[0].ssim &&
                   mit[2].ssim + kTol >= mit[1].ssim;
  }
  const bool voteRecovers = cimRecovered > 80.0;

  // --- 3: determinism -------------------------------------------------------
  bool deterministic[std::size(kDesigns)];
  bool allDeterministic = true;
  for (std::size_t d = 0; d < std::size(kDesigns); ++d) {
    deterministic[d] =
        faultyDeterministic(kDesigns[d], std::min<std::size_t>(size, 16));
    allDeterministic = allDeterministic && deterministic[d];
    std::printf("faulty run bit-identical at 1/2/8 threads: %-14s %s\n",
                core::designKindName(kDesigns[d]),
                deterministic[d] ? "yes" : "NO");
  }

  // --- 4: endurance ---------------------------------------------------------
  const std::vector<EnduranceRow> endurance = enduranceSweep(size, runs);
  {
    energy::Table t({"preload (Mcycles)", "SSIM"});
    for (const EnduranceRow& row : endurance) {
      t.addRow({energy::fmt(row.preloadMegaCycles, 0),
                energy::fmt(row.ssim, 1)});
    }
    std::printf("\nReRAM-SC gamma vs preloaded wear (drift 1e-3/Mcycle, "
                "rotation window 16 rows):\n%s",
                t.toString().c_str());
  }
  const bool rotationClean = wearRotationBitIdentical(std::min<std::size_t>(size, 16));
  std::printf("wear rotation bit-identical: %s\n", rotationClean ? "yes" : "NO");

  // --- JSON -----------------------------------------------------------------
  if (FILE* f = std::fopen("BENCH_reliability.json", "w")) {
    const auto b = [](bool v) { return v ? "true" : "false"; };
    std::fprintf(f,
                 "{\n"
                 "  \"runs\": %d,\n"
                 "  \"width\": %zu,\n"
                 "  \"height\": %zu,\n"
                 "  \"cim_beats_sc_fault_free\": %s,\n"
                 "  \"sc_beats_cim_at_high_rate\": %s,\n"
                 "  \"crossover_observed\": %s,\n"
                 "  \"crossover_flip_rate\": %.6g,\n"
                 "  \"vote_monotone\": %s,\n"
                 "  \"bincim_gamma_vote_recovers_above_80\": %s,\n"
                 "  \"bincim_gamma_faulty_ssim\": %.2f,\n"
                 "  \"bincim_gamma_recovered_ssim\": %.2f,\n"
                 "  \"wear_rotation_bit_identical\": %s,\n"
                 "  \"faulty_deterministic_all_designs\": %s,\n"
                 "  \"determinism\": {\n",
                 runs, size, size, b(cimBeatsScFaultFree),
                 b(scBeatsCimAtHighRate),
                 b(cimBeatsScFaultFree && scBeatsCimAtHighRate), crossoverRate,
                 b(voteMonotone), b(voteRecovers), cimUnmitigated,
                 cimRecovered, b(rotationClean), b(allDeterministic));
    for (std::size_t d = 0; d < std::size(kDesigns); ++d) {
      std::fprintf(f, "    \"%s\": %s%s\n", designKey(kDesigns[d]),
                   b(deterministic[d]),
                   d + 1 < std::size(kDesigns) ? "," : "");
    }
    std::fprintf(f, "  },\n  \"sweep_gamma\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepRow& row = sweep[i];
      std::fprintf(f, "    {\"rate\": %.6g", row.rate);
      for (std::size_t d = 0; d < std::size(kDesigns); ++d) {
        std::fprintf(f, ", \"%s\": %.2f", designKey(kDesigns[d]), row.ssim[d]);
      }
      std::fprintf(f, "}%s\n", i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"sweep_compositing\": [\n");
    for (std::size_t i = 0; i < sweepComp.size(); ++i) {
      const SweepRow& row = sweepComp[i];
      std::fprintf(f, "    {\"rate\": %.6g", row.rate);
      for (std::size_t d = 0; d < std::size(kDesigns); ++d) {
        std::fprintf(f, ", \"%s\": %.2f", designKey(kDesigns[d]), row.ssim[d]);
      }
      std::fprintf(f, "}%s\n", i + 1 < sweepComp.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"mitigation\": [\n");
    for (std::size_t i = 0; i < mit.size(); ++i) {
      std::fprintf(
          f,
          "    {\"design\": \"%s\", \"mitigation\": \"%s\", \"ssim\": %.2f, "
          "\"op_overhead\": %.2f}%s\n",
          designKey(mit[i].design), mit[i].label, mit[i].ssim,
          mit[i].opOverhead, i + 1 < mit.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"endurance\": [\n");
    for (std::size_t i = 0; i < endurance.size(); ++i) {
      std::fprintf(f,
                   "    {\"preload_megacycles\": %.0f, \"ssim\": %.2f}%s\n",
                   endurance[i].preloadMegaCycles, endurance[i].ssim,
                   i + 1 < endurance.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::puts("wrote BENCH_reliability.json");
  }
  return 0;
}
