// Image matting: recover the alpha channel with correlated XOR + CORDIV
// (paper Fig. 3c), then re-blend and compare against the original.
//
// Usage: image_matting [N] [size]
#include <cstdio>
#include <cstdlib>

#include "apps/matting.hpp"
#include "core/backend_reram.hpp"
#include "img/metrics.hpp"
#include "img/pgm.hpp"

int main(int argc, char** argv) {
  using namespace aimsc;

  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 256;
  const std::size_t size = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 80;

  const apps::MattingScene scene = apps::makeMattingScene(size, size, 21);

  core::AcceleratorConfig cfg;
  cfg.streamLength = n;
  core::ReramScBackend backend(cfg);
  const img::Image alpha = apps::mattingKernel(scene, backend);
  const img::Image blend = apps::blendWithAlpha(scene, alpha);

  std::printf("image matting, %zux%zu, N = %zu\n", size, size, n);
  std::printf("alpha SSIM vs ground truth: %.2f %%\n",
              img::ssim(alpha, scene.trueAlpha) * 100.0);
  std::printf("re-blend SSIM vs composite: %.2f %% (Table IV protocol)\n",
              img::ssim(blend, scene.composite) * 100.0);
  std::printf("re-blend PSNR vs composite: %.2f dB\n",
              img::psnrDb(blend, scene.composite));

  const auto ev = backend.events();
  std::printf("CORDIV iterations executed in memory: %llu\n",
              static_cast<unsigned long long>(ev.cordivIterations));

  img::writePgm("out_matting_alpha_true.pgm", scene.trueAlpha);
  img::writePgm("out_matting_alpha_est.pgm", alpha);
  img::writePgm("out_matting_reblend.pgm", blend);
  std::puts("wrote out_matting_*.pgm");
  return 0;
}
