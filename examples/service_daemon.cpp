// The always-on accelerator as a client would use it: start the daemon,
// have three tenants submit mixed frames asynchronously (async tickets +
// one blocking call), then read the per-tenant bills and batching stats.
//
// Tenant 20 serves with the paper's Table IV device-fault plan: its first
// frame pays the misdecision Monte-Carlo, every later frame hits the
// daemon's warm fault-model cache — same bytes, a fraction of the cost
// (see bench_service / BENCH_service.json).
//
// Usage: service_daemon [size]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/runner.hpp"
#include "img/synth.hpp"
#include "service/accelerator_service.hpp"

int main(int argc, char** argv) {
  using namespace aimsc;

  const std::size_t size =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 32;

  service::ServiceConfig sc;
  sc.lanes = 4;
  sc.rowsPerTile = 4;
  sc.maxBatch = 8;
  sc.flushDeadline = std::chrono::microseconds(500);
  service::AcceleratorService daemon(sc);
  std::printf("daemon up: %zu lanes, batch<=%zu, queue %zu deep\n\n",
              sc.lanes, sc.maxBatch, sc.queueCapacity);

  // Tenant 10: plain gamma frames on the CMOS-SC substrate.
  img::Image gammaSrc = img::naturalScene(size, size, 7 ^ 0xb111);
  img::Image gammaOut(size, size);
  service::Request gammaReq;
  gammaReq.app = apps::AppKind::Gamma;
  gammaReq.design = core::DesignKind::SwScLfsr;
  gammaReq.src = gammaSrc;
  gammaReq.out = gammaOut;
  gammaReq.seed = 7;

  // Tenant 20: ReRAM-SC compositing on faulty devices (Table IV serving).
  apps::CompositingScene scene = apps::makeCompositingScene(size, size, 9);
  img::Image faultyOut(size, size);
  service::Request faultyReq;
  faultyReq.app = apps::AppKind::Compositing;
  faultyReq.design = core::DesignKind::ReramSc;
  faultyReq.src = scene.background;
  faultyReq.aux1 = scene.foreground;
  faultyReq.aux2 = scene.alpha;
  faultyReq.out = faultyOut;
  faultyReq.seed = 9;
  faultyReq.faults =
      reliability::FaultPlan::deviceOnly(apps::defaultFaultyDevice());

  // Tenant 30: triple-modular-redundant smoothing in its own seed universe.
  daemon.setTenantSeedNamespace(30, 0x30aa);
  img::Image filterSrc = img::naturalScene(size, size, 3 ^ 0xb111);
  img::Image filterOut(size, size);
  service::Request filterReq;
  filterReq.app = apps::AppKind::Filters;
  filterReq.design = core::DesignKind::SwScSimd;
  filterReq.src = filterSrc;
  filterReq.out = filterOut;
  filterReq.seed = 3;
  filterReq.redundancy.replicas = 3;

  // Async submits from two tenants, then a blocking run from the third —
  // all three may coalesce into shared batches.
  std::vector<service::Ticket> tickets;
  for (int frame = 0; frame < 3; ++frame) {
    tickets.push_back(daemon.submit(10, gammaReq));
    tickets.push_back(daemon.submit(20, faultyReq));
  }
  const service::RequestResult tmr = daemon.run(30, filterReq);
  std::printf("tenant 30 (TMR filter): %zu-wide batch, queue %.0fus, exec "
              "%.0fus\n", tmr.batchSize, tmr.queueMicros, tmr.execMicros);

  for (const service::Ticket& t : tickets) {
    const service::RequestResult r = daemon.wait(t);
    std::printf("ticket %llu: batch of %zu, queue %.0fus, exec %.0fus\n",
                static_cast<unsigned long long>(t.id), r.batchSize,
                r.queueMicros, r.execMicros);
  }

  std::puts("\nper-tenant bills:");
  for (const service::TenantId tenant : {10u, 20u, 30u}) {
    const service::TenantLedger bill = daemon.tenantLedger(tenant);
    std::printf(
        "  tenant %u: %llu requests, %llu replicas, %llu px, %llu ops, "
        "%llu SL reads\n",
        tenant, static_cast<unsigned long long>(bill.requests),
        static_cast<unsigned long long>(bill.replicasRun),
        static_cast<unsigned long long>(bill.pixels),
        static_cast<unsigned long long>(bill.opCount),
        static_cast<unsigned long long>(bill.events.slReads));
  }

  const service::ServiceStats stats = daemon.stats();
  std::printf(
      "\nservice: %llu requests in %llu batches (mean occupancy %.2f), "
      "fault tables: %llu hits / %llu misses\n",
      static_cast<unsigned long long>(stats.requestsServed),
      static_cast<unsigned long long>(stats.batches), stats.meanOccupancy(),
      static_cast<unsigned long long>(stats.faultModelCacheHits),
      static_cast<unsigned long long>(stats.faultModelCacheMisses));

  daemon.shutdown();
  std::puts("daemon drained and stopped");
  return 0;
}
