// Extension kernels from classic SC image processing ([5]): 8-neighbour
// noise smoothing, Roberts-cross edge detection, Bernstein gamma correction
// and 3x3 morphological opening — all on any execution substrate.
//
// Usage: image_filters [design] [N] [size]
//   design: Reference | SwScLfsr | SwScSobol | SwScSimd | ReramSc | BinaryCim
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "apps/filters.hpp"
#include "apps/morphology.hpp"
#include "core/backend.hpp"
#include "img/metrics.hpp"
#include "img/pgm.hpp"
#include "img/synth.hpp"

int main(int argc, char** argv) {
  using namespace aimsc;

  core::DesignKind design = core::DesignKind::ReramSc;
  if (argc > 1) {
    try {
      design = core::parseDesignKind(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  const std::size_t n = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 256;
  const std::size_t size = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 64;

  const img::Image src = img::naturalScene(size, size, 31);

  core::BackendFactoryConfig cfg;
  cfg.streamLength = n;
  const auto backend = core::makeBackend(design, cfg);
  std::printf("backend: %s, N = %zu, %zux%zu scene\n\n", backend->name(), n,
              size, size);

  const img::Image smoothRef = apps::smoothReference(src);
  const img::Image smoothSc = apps::smoothKernel(src, *backend);
  std::printf("smoothing : PSNR vs reference %.2f dB\n",
              img::psnrDb(smoothSc, smoothRef));

  const img::Image edgeRef = apps::edgeReference(src);
  const img::Image edgeSc = apps::edgeKernel(src, *backend);
  std::printf("edges     : PSNR vs reference %.2f dB\n",
              img::psnrDb(edgeSc, edgeRef));

  const img::Image gammaRef = apps::gammaReference(src, 2.2);
  const img::Image gammaSc = apps::gammaKernel(src, 2.2, *backend, 4);
  std::printf("gamma 2.2 : PSNR vs reference %.2f dB (Bernstein degree 4)\n",
              img::psnrDb(gammaSc, gammaRef));

  const img::Image openRef = apps::openReference(src);
  const img::Image openSc = apps::openKernel(src, *backend);
  std::printf("opening   : PSNR vs reference %.2f dB (3x3 min/max trees)\n",
              img::psnrDb(openSc, openRef));

  img::writePgm("out_filters_input.pgm", src);
  img::writePgm("out_filters_smooth.pgm", smoothSc);
  img::writePgm("out_filters_edges.pgm", edgeSc);
  img::writePgm("out_filters_gamma.pgm", gammaSc);
  img::writePgm("out_filters_open.pgm", openSc);
  std::puts("wrote out_filters_*.pgm");
  return 0;
}
