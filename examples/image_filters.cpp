// Extension kernels from classic SC image processing ([5]): 8-neighbour
// noise smoothing and Roberts-cross edge detection, both all-in-memory.
//
// Usage: image_filters [N] [size]
#include <cstdio>
#include <cstdlib>

#include "apps/filters.hpp"
#include "core/backend_reram.hpp"
#include "img/metrics.hpp"
#include "img/pgm.hpp"
#include "img/synth.hpp"

int main(int argc, char** argv) {
  using namespace aimsc;

  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 256;
  const std::size_t size = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 64;

  const img::Image src = img::naturalScene(size, size, 31);

  core::AcceleratorConfig cfg;
  cfg.streamLength = n;
  core::Accelerator acc(cfg);
  core::ReramScBackend backend(acc);

  const img::Image smoothRef = apps::smoothReference(src);
  const img::Image smoothSc = apps::smoothKernel(src, backend);
  std::printf("smoothing : PSNR vs reference %.2f dB (N = %zu)\n",
              img::psnrDb(smoothSc, smoothRef), n);

  const img::Image edgeRef = apps::edgeReference(src);
  const img::Image edgeSc = apps::edgeKernel(src, backend);
  std::printf("edges     : PSNR vs reference %.2f dB\n",
              img::psnrDb(edgeSc, edgeRef));

  const img::Image gammaRef = apps::gammaReference(src, 2.2);
  const img::Image gammaSc = apps::gammaReramSc(src, 2.2, acc, 4);
  std::printf("gamma 2.2 : PSNR vs reference %.2f dB (Bernstein degree 4)\n",
              img::psnrDb(gammaSc, gammaRef));

  img::writePgm("out_filters_input.pgm", src);
  img::writePgm("out_filters_smooth.pgm", smoothSc);
  img::writePgm("out_filters_edges.pgm", edgeSc);
  img::writePgm("out_filters_gamma.pgm", gammaSc);
  std::puts("wrote out_filters_*.pgm");
  return 0;
}
