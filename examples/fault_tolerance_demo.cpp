// The paper's reliability headline (Sec. IV-C) as a demo: run compositing
// on increasingly unreliable devices and watch SC degrade gracefully while
// binary CIM collapses.
//
// Usage: fault_tolerance_demo [size]
#include <cstdio>
#include <cstdlib>

#include "apps/runner.hpp"
#include "energy/report.hpp"
#include "reram/fault_model.hpp"

int main(int argc, char** argv) {
  using namespace aimsc;

  const std::size_t size = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 40;

  std::puts("Fault tolerance: ReRAM-SC vs binary CIM under HRS instability\n");
  energy::Table t({"sigma_HRS", "worst p_fail (2-row op)", "SC SSIM %",
                   "binary SSIM %"});

  for (const double sigmaHrs : {0.6, 0.9, 1.1, 1.3}) {
    reram::DeviceParams dev;
    dev.sigmaLrs = 0.12;
    dev.sigmaHrs = sigmaHrs;

    reram::FaultModel fm(dev, 1, 40000);
    double worst = 0;
    for (const auto op : {reram::SlOp::And, reram::SlOp::Or, reram::SlOp::Xor}) {
      worst = std::max(worst, fm.worstCase(op, 2));
    }

    apps::RunConfig cfg;
    cfg.width = size;
    cfg.height = size;
    cfg.streamLength = 128;
    cfg.faults = reliability::FaultPlan::deviceOnly(dev);
    const apps::Quality sc =
        apps::runApp(apps::AppKind::Compositing, apps::DesignKind::ReramSc, cfg);
    const apps::Quality bin = apps::runApp(apps::AppKind::Compositing,
                                           apps::DesignKind::BinaryCim, cfg);

    char pfail[32];
    std::snprintf(pfail, sizeof(pfail), "%.2e", worst);
    t.addRow({energy::fmt(sigmaHrs, 1), pfail, energy::fmt(sc.ssimPct, 1),
              energy::fmt(bin.ssimPct, 1)});
  }
  std::fputs(t.toString().c_str(), stdout);
  std::puts("\nSC needs no fault-protection hardware: every bit carries the"
            " same weight,\nso misdecisions perturb the value by 1/N instead"
            " of 2^k (Sec. IV-C).");
  return 0;
}
