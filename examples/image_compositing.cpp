// Image compositing on the in-memory SC accelerator (paper Fig. 3a).
// Writes background / foreground / alpha / composite PGMs to ./out_compositing_*.pgm
// so the results can be inspected with any image viewer.
//
// Usage: image_compositing [N] [size]
#include <cstdio>
#include <cstdlib>

#include "apps/compositing.hpp"
#include "apps/runner.hpp"
#include "core/backend_reram.hpp"
#include "core/backend_swsc.hpp"
#include "core/backend_swsc_simd.hpp"
#include "img/metrics.hpp"
#include "img/pgm.hpp"

int main(int argc, char** argv) {
  using namespace aimsc;

  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
  const std::size_t size = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 96;

  const apps::CompositingScene scene = apps::makeCompositingScene(size, size, 7);
  const img::Image ref = apps::compositeReference(scene);

  core::AcceleratorConfig cfg;
  cfg.streamLength = n;
  core::ReramScBackend backend(cfg);  // one kernel, pluggable substrate
  const img::Image out = apps::compositeKernel(scene, backend);

  std::printf("Image compositing, %zux%zu, N = %zu\n", size, size, n);
  std::printf("SSIM  vs reference: %.2f %%\n", img::ssim(out, ref) * 100.0);
  std::printf("PSNR  vs reference: %.2f dB\n", img::psnrDb(out, ref));

  const auto ev = backend.events();
  std::printf("memory events: %llu SL reads, %llu row writes, %llu ADC convs\n",
              static_cast<unsigned long long>(ev.slReads),
              static_cast<unsigned long long>(ev.rowWrites),
              static_cast<unsigned long long>(ev.adcConversions));

  // The same kernel on the software-SC substrates: the SIMD-batched
  // backend reproduces the scalar CMOS baseline bit for bit.
  core::SwScConfig swCfg;
  swCfg.streamLength = n;
  core::SwScBackend scalarSw(swCfg);
  core::SwScSimdConfig simdCfg;
  simdCfg.streamLength = n;
  core::SwScSimdBackend simdSw(simdCfg);
  const img::Image swOut = apps::compositeKernel(scene, scalarSw);
  const img::Image simdOut = apps::compositeKernel(scene, simdSw);
  std::printf("SW-SC (LFSR) PSNR vs reference: %.2f dB; SIMD backend %s\n",
              img::psnrDb(swOut, ref),
              simdOut.pixels() == swOut.pixels() ? "bit-identical"
                                                 : "DIVERGED (bug)");

  img::writePgm("out_compositing_background.pgm", scene.background);
  img::writePgm("out_compositing_foreground.pgm", scene.foreground);
  img::writePgm("out_compositing_alpha.pgm", scene.alpha);
  img::writePgm("out_compositing_reference.pgm", ref);
  img::writePgm("out_compositing_sc.pgm", out);
  std::puts("wrote out_compositing_*.pgm");
  return 0;
}
