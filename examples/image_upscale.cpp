// Bilinear up-scaling with the in-memory 4-to-1 MAJ-MUX (paper Fig. 3b).
// Optionally reads a user PGM: image_upscale [N] [input.pgm]
#include <cstdio>
#include <cstdlib>

#include "apps/bilinear.hpp"
#include "core/backend_reram.hpp"
#include "img/metrics.hpp"
#include "img/pgm.hpp"
#include "img/synth.hpp"

int main(int argc, char** argv) {
  using namespace aimsc;

  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
  img::Image src;
  if (argc > 2) {
    src = img::readPgm(argv[2]);
    std::printf("loaded %s (%zux%zu)\n", argv[2], src.width(), src.height());
  } else {
    src = img::naturalScene(48, 48, 11);
  }

  const img::Image ref = apps::upscaleReference(src, 2);

  core::AcceleratorConfig cfg;
  cfg.streamLength = n;
  core::ReramScBackend backend(cfg);
  const img::Image out = apps::upscaleKernel(src, 2, backend);

  std::printf("bilinear x2 up-scaling, N = %zu\n", n);
  std::printf("SSIM vs float reference: %.2f %%\n", img::ssim(out, ref) * 100.0);
  std::printf("PSNR vs float reference: %.2f dB\n", img::psnrDb(out, ref));

  img::writePgm("out_upscale_input.pgm", src);
  img::writePgm("out_upscale_reference.pgm", ref);
  img::writePgm("out_upscale_sc.pgm", out);
  std::puts("wrote out_upscale_*.pgm");
  return 0;
}
