// Quickstart: the full all-in-memory SC flow on a few scalars.
//
//   1. binary -> stochastic (IMSNG: TRNG planes + in-memory greater-than)
//   2. stochastic arithmetic with scouting logic
//   3. stochastic -> binary (reference column + 8-bit ADC)
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/accelerator.hpp"
#include "sc/correlation.hpp"

int main() {
  using namespace aimsc;

  core::AcceleratorConfig cfg;
  cfg.streamLength = 1024;  // bit-stream length N
  cfg.mBits = 8;            // TRNG segment size M
  core::Accelerator acc(cfg);

  std::puts("All-in-Memory Stochastic Computing quickstart");
  std::printf("stream length N = %zu, segment size M = %d\n\n",
              acc.streamLength(), cfg.mBits);

  // --- independent streams: multiplication and scaled addition ------------
  const double px = 0.40;
  const double py = 0.65;
  const sc::Bitstream x = acc.encodeProb(px);  // fresh TRNG planes
  const sc::Bitstream y = acc.encodeProb(py);
  const sc::Bitstream half = acc.halfStream();

  std::printf("x = %.2f encoded as SBS with value %.3f (SCC(x,y) = %+.3f)\n",
              px, x.value(), sc::scc(x, y));
  std::printf("x * y       : SC %.3f   exact %.3f\n",
              acc.decodeProb(acc.ops().multiply(x, y)), px * py);
  std::printf("(x + y) / 2 : SC %.3f   exact %.3f  (single MAJ cycle)\n",
              acc.decodeProb(acc.ops().scaledAdd(x, y, half)), (px + py) / 2);

  // --- correlated streams: subtraction and CORDIV division ----------------
  const sc::Bitstream xc = acc.encodeProb(px);             // fresh planes...
  const sc::Bitstream yc = acc.encodeProbCorrelated(py);   // ...shared here
  std::printf("\ncorrelated pair: SCC = %+.3f\n", sc::scc(xc, yc));
  std::printf("|x - y|     : SC %.3f   exact %.3f\n",
              acc.decodeProb(acc.ops().absSub(xc, yc)), py - px);
  std::printf("x / y       : SC %.3f   exact %.3f  (CORDIV)\n",
              acc.decodeProb(acc.ops().divide(xc, yc)), px / py);

  // --- what did the memory do? ---------------------------------------------
  const auto& ev = acc.events();
  std::printf(
      "\nevent ledger: %llu SL reads, %llu row writes, %llu TRNG bits, "
      "%llu ADC conversions, %llu CORDIV iterations\n",
      static_cast<unsigned long long>(ev.slReads),
      static_cast<unsigned long long>(ev.rowWrites),
      static_cast<unsigned long long>(ev.trngBits),
      static_cast<unsigned long long>(ev.adcConversions),
      static_cast<unsigned long long>(ev.cordivIterations));
  return 0;
}
