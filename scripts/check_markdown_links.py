#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown files resolve.

Usage: python3 scripts/check_markdown_links.py [root]

Scans every *.md file under the root (default: the repo root, i.e. the
parent of this script's directory), extracts inline links `[text](target)`
and reference definitions `[id]: target`, and verifies that non-URL
targets exist on disk relative to the file containing them.  Fragment-only
links (`#section`) and external schemes (http/https/mailto) are skipped;
`path#fragment` checks only the path part.  Exits nonzero listing every
broken link.
"""

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", "build", "build-asan", "related"}
# Verbatim exemplar material quoted from other repositories; its links
# point into those repos, not ours.
SKIP_FILES = {"SNIPPETS.md"}
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def targets(text):
    yield from INLINE.findall(text)
    yield from REFDEF.findall(text)


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    broken = []
    checked = 0
    for md in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in md.relative_to(root).parts):
            continue
        if md.name in SKIP_FILES:
            continue
        text = md.read_text(encoding="utf-8", errors="replace")
        for target in targets(text):
            if target.startswith(SCHEMES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            checked += 1
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                broken.append(f"{md.relative_to(root)}: broken link -> {target}")
    for line in broken:
        print(line, file=sys.stderr)
    print(f"checked {checked} relative links, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
