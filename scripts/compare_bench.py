#!/usr/bin/env python3
"""Benchmark regression comparator for the committed BENCH_*.json baselines.

Usage:
    compare_bench.py CURRENT.json BASELINE.json [--max-drop 0.15]
                     [--min-speedup X] [--require-true KEY ...]

Policy (documented in docs/BENCHMARKS.md):

* Boolean contract keys (bit-identity, zero-steady-state-growth, ...) must
  be true in CURRENT whenever they are true in BASELINE — a contract that
  held may never regress.
* --require-true KEY (repeatable) additionally asserts the flattened KEY is
  present AND true in CURRENT regardless of the baseline — the schema gate
  for newly introduced contracts (e.g. the BENCH_reliability.json
  determinism and crossover booleans on every PR).
* Ratio keys (any numeric key containing "speedup") are machine-normalized
  throughput signals.  When CURRENT and BASELINE were produced at the same
  image size they must not drop more than --max-drop (default 15%) below
  the baseline; at different sizes (e.g. the 32x32 CI smoke vs the
  committed 256x256 baseline) only the --min-speedup floor applies
  (default 1.0: the fused path must never be slower than the allocating
  path, SIMD never slower than scalar).
* Absolute pixels/s values are NOT compared: they measure the host, not
  the code.

Exit status 0 = pass, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import sys


def flatten(obj, prefix=""):
    """Flattens nested dicts to dotted keys; lists are skipped (the tiled
    sweep is host-dependent)."""
    out = {}
    for key, value in obj.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten(value, dotted + "."))
        elif isinstance(value, (bool, int, float)):
            out[dotted] = value
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--max-drop", type=float, default=0.15,
                        help="max fractional ratio drop at matching size")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="ratio floor when sizes differ")
    parser.add_argument("--require-true", action="append", default=[],
                        metavar="KEY",
                        help="flattened key that must be present and true in "
                             "CURRENT (repeatable)")
    args = parser.parse_args()

    try:
        with open(args.current) as f:
            current = flatten(json.load(f))
        with open(args.baseline) as f:
            baseline = flatten(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare_bench: cannot load inputs: {e}", file=sys.stderr)
        return 2

    same_size = all(
        key in current and key in baseline and current[key] == baseline[key]
        for key in ("width", "height")
    )

    failures = []
    checked = 0
    for key in args.require_true:
        if current.get(key) is not True:
            failures.append(
                f"required contract '{key}' not true in current run: "
                f"{current.get(key)!r}")
        checked += 1
    # Boolean keys describing the HOST (capabilities, not contracts) are
    # never compared — e.g. "swsc.avx2" legitimately differs per machine.
    # (The width_bit_identical_* keys are NOT host keys: explicit width
    # requests clamp down the ladder, so they are contracts everywhere.)
    host_keys = {"swsc.avx2", "swsc.avx512"}
    for key, base in sorted(baseline.items()):
        if key in host_keys:
            continue
        if isinstance(base, bool):
            if base and current.get(key) is not True:
                failures.append(
                    f"boolean contract '{key}' regressed: baseline true, "
                    f"current {current.get(key)!r}")
            checked += 1
            continue
        if "speedup" not in key:
            continue  # absolute throughput: host-dependent, skip
        cur = current.get(key)
        if cur is None:
            failures.append(f"ratio key '{key}' missing from current run")
            continue
        checked += 1
        if same_size:
            floor = base * (1.0 - args.max_drop)
            if cur < floor:
                failures.append(
                    f"'{key}' dropped >{args.max_drop:.0%}: "
                    f"{cur:.2f} < {floor:.2f} (baseline {base:.2f})")
        elif cur < args.min_speedup:
            failures.append(
                f"'{key}' below floor at mismatched size: "
                f"{cur:.2f} < {args.min_speedup:.2f}")

    mode = "matching-size" if same_size else "mismatched-size (floor-only)"
    print(f"compare_bench: {checked} keys checked ({mode})")
    if failures:
        for f_ in failures:
            print(f"  FAIL: {f_}", file=sys.stderr)
        return 1
    print("compare_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
