#!/usr/bin/env python3
"""Tests for compare_bench.py: the ratio-drop rule, the boolean-contract
rule, and the --require-true schema gate.

Runs standalone (``python3 scripts/test_compare_bench.py``) and under
pytest (the CI job) — each ``test_*`` function is independent and uses only
the standard library.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def run_compare(current, baseline, *extra):
    """Writes the two dicts to temp files and runs compare_bench on them."""
    with tempfile.TemporaryDirectory() as tmp:
        cur_path = os.path.join(tmp, "current.json")
        base_path = os.path.join(tmp, "baseline.json")
        with open(cur_path, "w") as f:
            json.dump(current, f)
        with open(base_path, "w") as f:
            json.dump(baseline, f)
        return subprocess.run(
            [sys.executable, SCRIPT, cur_path, base_path, *extra],
            capture_output=True, text=True)


BASELINE = {
    "width": 64, "height": 64,
    "service_batched_speedup": 2.0,
    "deterministic_under_batching": True,
}


def test_identical_runs_pass():
    proc = run_compare(dict(BASELINE), dict(BASELINE))
    assert proc.returncode == 0, proc.stderr


def test_ratio_drop_within_15_percent_passes():
    current = dict(BASELINE, service_batched_speedup=1.75)  # -12.5%
    proc = run_compare(current, BASELINE)
    assert proc.returncode == 0, proc.stderr


def test_ratio_drop_beyond_15_percent_fails():
    current = dict(BASELINE, service_batched_speedup=1.6)  # -20%
    proc = run_compare(current, BASELINE)
    assert proc.returncode == 1
    assert "dropped" in proc.stderr


def test_mismatched_size_uses_floor_not_drop():
    # A big drop is fine at a different image size; sinking below the 1.0
    # floor is not.
    current = dict(BASELINE, width=16, height=16,
                   service_batched_speedup=1.2)
    assert run_compare(current, BASELINE).returncode == 0
    current["service_batched_speedup"] = 0.9
    proc = run_compare(current, BASELINE)
    assert proc.returncode == 1
    assert "below floor" in proc.stderr


def test_boolean_contract_regression_fails():
    current = dict(BASELINE, deterministic_under_batching=False)
    proc = run_compare(current, BASELINE)
    assert proc.returncode == 1
    assert "boolean contract" in proc.stderr


def test_require_true_gates_missing_key():
    proc = run_compare(dict(BASELINE), dict(BASELINE),
                       "--require-true", "batched_speedup_ge_1p5")
    assert proc.returncode == 1
    assert "required contract" in proc.stderr


def test_require_true_passes_when_present_and_true():
    current = dict(BASELINE, batched_speedup_ge_1p5=True)
    proc = run_compare(current, BASELINE,
                       "--require-true", "batched_speedup_ge_1p5")
    assert proc.returncode == 0, proc.stderr


def test_require_true_rejects_false():
    current = dict(BASELINE, batched_speedup_ge_1p5=False)
    proc = run_compare(current, BASELINE,
                       "--require-true", "batched_speedup_ge_1p5")
    assert proc.returncode == 1


def test_host_capability_booleans_are_never_contracts():
    # swsc.avx2 / swsc.avx512 describe the machine the baseline was made
    # on; losing them on a weaker CI host must not fail the comparison.
    baseline = dict(BASELINE, swsc={"avx2": True, "avx512": True,
                                    "width_bit_identical_avx512": True})
    current = dict(BASELINE, swsc={"avx2": False, "avx512": False,
                                   "width_bit_identical_avx512": True})
    proc = run_compare(current, baseline)
    assert proc.returncode == 0, proc.stderr
    # ...but the clamped width contracts ARE portable contracts.
    current["swsc"]["width_bit_identical_avx512"] = False
    proc = run_compare(current, baseline)
    assert proc.returncode == 1
    assert "width_bit_identical_avx512" in proc.stderr


def test_recovery_booleans_gate_like_any_contract():
    # The chaos-smoke job schema-gates the shard recovery contracts: all
    # three must be present AND true in the current run regardless of the
    # baseline's vintage.
    gates = ("--require-true", "recovered_byte_identical",
             "--require-true", "degraded_byte_identical",
             "--require-true", "no_hang_under_chaos")
    current = dict(BASELINE, recovered_byte_identical=True,
                   degraded_byte_identical=True, no_hang_under_chaos=True)
    proc = run_compare(current, dict(BASELINE), *gates)
    assert proc.returncode == 0, proc.stderr
    # A hang (or any false/missing recovery boolean) fails the gate.
    current["no_hang_under_chaos"] = False
    proc = run_compare(current, dict(BASELINE), *gates)
    assert proc.returncode == 1
    assert "no_hang_under_chaos" in proc.stderr
    del current["recovered_byte_identical"]
    current["no_hang_under_chaos"] = True
    proc = run_compare(current, dict(BASELINE), *gates)
    assert proc.returncode == 1
    assert "recovered_byte_identical" in proc.stderr


def test_recovery_latency_percentiles_are_host_variant():
    # recovery_latency_ms_* and the chaos retry counters measure the host
    # (and the sweep length), not the code: huge swings must not fail, in
    # either direction — only "speedup" keys are ratio-compared.
    baseline = dict(BASELINE, recovery_latency_ms_p50=14.0,
                    recovery_latency_ms_p95=270.0, chaos_retries=50)
    current = dict(BASELINE, recovery_latency_ms_p50=900.0,
                   recovery_latency_ms_p95=4000.0, chaos_retries=3)
    assert run_compare(current, baseline).returncode == 0
    assert run_compare(baseline, current).returncode == 0


def test_nested_keys_flatten_with_dots():
    baseline = dict(BASELINE, alloc={"swsc_fused_speedup": 10.0})
    current = dict(BASELINE, alloc={"swsc_fused_speedup": 2.0})
    proc = run_compare(current, baseline)
    assert proc.returncode == 1
    assert "alloc.swsc_fused_speedup" in proc.stderr


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as e:
            failed += 1
            print(f"FAIL {name}: {e}")
    print(f"{len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
